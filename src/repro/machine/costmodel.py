"""Analytic SpMV cost model — the simulated testbed.

This module substitutes for the paper's hardware measurements (see
DESIGN.md).  Given a matrix's Table 2 feature vector, an architecture, a
storage format, a precision and a kernel strategy set, it produces a
deterministic execution-time estimate built from the standard roofline
ingredients:

* **memory time** — bytes moved (matrix arrays *including padding*, the
  X gather/stream traffic, and Y writes) over the effective bandwidth;
  working sets smaller than the LLC run at cache bandwidth,
* **compute time** — multiply-adds (again including padding work for
  DIA/ELL) over peak throughput, derated by a per-format regularity factor
  that captures how SIMD-friendly the access pattern is,
* **loop overhead** — per-row (CSR), per-diagonal (DIA) and per-packed-slot
  (ELL) bookkeeping; this is what makes COO win on very short rows,
* **imbalance** — row-partitioned parallel kernels slow down with the
  row-degree coefficient of variation; COO's element partition does not.

Every qualitative rule of the paper's Section 4 falls out of these terms:
small ``Ndiags``/``max_RD`` and large ``ER_*``/``NTdiags_ratio`` favour
DIA/ELL; power-law skew (large ``var_RD``) pushes row-partitioned formats
toward COO; everything else defaults to CSR.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.features.parameters import FeatureVector
from repro.kernels.strategies import Strategy, StrategySet
from repro.machine.arch import Architecture
from repro.types import FormatName, Precision

#: Index bytes assumed by the model (the paper's kernels use 32-bit ints).
MODEL_INDEX_BYTES = 4

#: CSR-SpMV units charged for one codegen emit+compile.  ``compile()`` of
#: a few-hundred-byte source is microseconds; the charge mostly covers the
#: emitter's structural scans (degree histograms, segment boundaries).
CODEGEN_COMPILE_UNITS = 2.0


def codegen_overhead_units(probe_repeats: int) -> float:
    """Budget charge for one beat-or-keep kernel specialization.

    The audit runs one verification call plus ``probe_repeats`` timed
    calls for each of the two candidate kernels; every call is about one
    SpMV on the decision's own matrix, i.e. about one CSR-SpMV unit.
    The tuner's budgeted cascade checks this charge against
    ``tune_budget_units`` before invoking the backend, the same way it
    gates conversions and fallback measurements.
    """
    return CODEGEN_COMPILE_UNITS + 2.0 * (1 + probe_repeats)

#: Fraction of X-gather traffic that misses cache for each format when the
#: X vector does not fit in the LLC.  CSR's row-major gathers are the most
#: random; ELL's column-major sweep revisits the same X window per slot.
GATHER_MISS = {
    FormatName.CSR: 0.55,
    FormatName.COO: 0.55,
    FormatName.ELL: 0.30,
    FormatName.DIA: 0.10,
    FormatName.BCSR: 0.40,
    FormatName.HYB: 0.35,
    FormatName.CSC: 0.20,   # x is read sequentially; Y takes the misses
    FormatName.SKY: 0.12,   # dense profile windows stream like DIA
    FormatName.BDIA: 0.08,  # banded streaming, one X window per band
}

#: SIMD efficiency of each format's inner loop (fraction of peak reachable
#: by a fully vectorized kernel).
REGULARITY = {
    FormatName.DIA: 0.85,
    FormatName.ELL: 0.76,
    FormatName.BCSR: 0.60,
    FormatName.SKY: 0.65,
    FormatName.CSR: 0.45,
    FormatName.HYB: 0.50,
    FormatName.COO: 0.38,
    FormatName.CSC: 0.25,   # scatter-bound
    FormatName.BDIA: 0.88,  # dense band slabs: the most SIMD-friendly sweep
}

#: Loop bookkeeping in cycles.
ROW_LOOP_CYCLES = 7.5  # CSR: ptr loads, loop setup, branch, remainder, store
DIAG_LOOP_CYCLES = 40.0  # DIA: bounds computation + stream setup per diagonal
SLOT_LOOP_CYCLES = 40.0  # ELL: per packed column sweep
SCATTER_CYCLES = 1.1  # COO: read-modify-write on Y per element

#: Amplitude of the deterministic per-matrix performance variation (see
#: ``_structure_jitter``).  Real measurements vary with structure details the
#: 11 features cannot see (exact band placement, column locality, NUMA page
#: luck); without this term the cost model would be an *exact* function of
#: the feature vector and the learner would be unrealistically perfect.
#: The amplitude is format-specific: CSR's row-loop performance is by far
#: the most sensitive to invisible structure (column locality, branch
#: behaviour on ragged rows) — the paper's "relatively intricate features of
#: CSR as the most general format" — while COO's element stream and the
#: dense DIA/ELL sweeps are structurally determined.  The asymmetry is what
#: keeps the learned CSR rules impure (so the runtime falls back to
#: execute-and-measure on them, Table 3) while DIA/ELL/COO rules stay
#: confident.  Magnitudes reproduce the paper's accuracy band (80-92%).
JITTER_AMPLITUDE = {
    FormatName.CSR: 0.18,
    FormatName.COO: 0.05,
    FormatName.DIA: 0.07,
    FormatName.ELL: 0.07,
    FormatName.BCSR: 0.12,
    FormatName.HYB: 0.10,
    FormatName.CSC: 0.15,
    FormatName.SKY: 0.08,
    FormatName.BDIA: 0.06,
}

#: Cap on the slowdown attributed to row-partition load imbalance.
IMBALANCE_CAP = 6.0
#: Mild slowdown per unit of row-degree coefficient of variation: a few
#: dense rows among thousands barely skew a 12-way static partition.
IMBALANCE_CV_WEIGHT = 0.06
IMBALANCE_CV_CAP = 8.0
#: Extra slowdown when the *whole* degree distribution is heavy-tailed
#: (power-law R in [1, 4]): hub rows land in every partition, so a static
#: row split cannot balance — the effect Yang et al. identify as the reason
#: COO wins on graph matrices.
IMBALANCE_POWER_LAW_PENALTY = 2.5


@dataclass(frozen=True)
class CostBreakdown:
    """The components of one estimate (useful for ablation benches)."""

    memory_s: float
    compute_s: float
    overhead_s: float
    imbalance: float

    @property
    def total_s(self) -> float:
        return (max(self.memory_s, self.compute_s) + self.overhead_s) * (
            self.imbalance
        )


def estimate_spmv_time(
    arch: Architecture,
    fmt: FormatName,
    features: FeatureVector,
    precision: Precision = Precision.DOUBLE,
    strategies: StrategySet = frozenset(),
) -> float:
    """Estimated seconds for one SpMV.

    Deterministic: repeated calls with the same arguments return the same
    time, the way repeated measurements of the same kernel on the same
    matrix agree (so the execute-and-measure fallback is stable).
    """
    breakdown = cost_breakdown(arch, fmt, features, precision, strategies)
    return breakdown.total_s * _structure_jitter(arch, fmt, features, precision)


def estimate_gflops(
    arch: Architecture,
    fmt: FormatName,
    features: FeatureVector,
    precision: Precision = Precision.DOUBLE,
    strategies: StrategySet = frozenset(),
) -> float:
    """Useful GFLOPS (2 x NNZ over estimated time) — the paper's metric."""
    seconds = estimate_spmv_time(arch, fmt, features, precision, strategies)
    if seconds <= 0.0:
        return 0.0
    return 2.0 * features.nnz / seconds / 1e9


def cost_breakdown(
    arch: Architecture,
    fmt: FormatName,
    features: FeatureVector,
    precision: Precision,
    strategies: StrategySet,
) -> CostBreakdown:
    """Full cost decomposition for one (matrix, format, kernel) triple."""
    f = features
    b = precision.bytes_per_value
    vectorized = Strategy.VECTORIZE in strategies
    # THREAD (real ThreadPoolExecutor chunks) scales like PARALLEL (the
    # modelled static row partition): both split rows across the cores.
    parallel = (
        Strategy.PARALLEL in strategies or Strategy.THREAD in strategies
    )
    blocked = Strategy.ROW_BLOCK in strategies
    unrolled = Strategy.UNROLL in strategies
    threads = arch.cores if parallel else 1

    padded = _padded_size(fmt, f)
    matrix_bytes, x_bytes, y_bytes = _traffic(fmt, f, b, padded, blocked, arch)
    total_bytes = matrix_bytes + x_bytes + y_bytes
    cache_resident = (matrix_bytes + f.n * b) <= arch.llc_bytes()
    bandwidth = arch.bandwidth_bytes_per_s(threads, cache_resident)
    memory_s = total_bytes / bandwidth

    flop_work = 2.0 * padded
    regularity = REGULARITY[fmt] * (1.0 if vectorized else 0.55)
    lanes = arch.simd_lanes(precision) if vectorized else 1
    peak_flops = arch.frequency_ghz * 1e9 * 2.0 * lanes * threads
    compute_s = flop_work / (peak_flops * regularity)

    overhead_s = _loop_overhead(fmt, f, unrolled, blocked) / (
        arch.frequency_ghz * 1e9 * threads
    )

    imbalance = _imbalance(fmt, f, parallel)
    return CostBreakdown(memory_s, compute_s, overhead_s, imbalance)


def _padded_size(fmt: FormatName, f: FeatureVector) -> float:
    """Stored slots the kernel actually processes (padding included)."""
    if fmt is FormatName.DIA:
        return max(float(f.ndiags * f.m), float(f.nnz))
    if fmt is FormatName.ELL:
        return max(float(f.max_rd * f.m), float(f.nnz))
    if fmt is FormatName.BCSR:
        # Model a 2x2 blocking with ~55% typical block fill.
        return float(f.nnz) / 0.55
    if fmt is FormatName.HYB:
        # The split keeps the ELL part ~90% dense; overflow goes to COO.
        return float(f.nnz) * 1.1
    if fmt is FormatName.SKY:
        # The profile stores every slot between the first non-zero of each
        # row and the diagonal; approximate its density from the band
        # census: a fully "true"-diagonal band is ~half profile-covered.
        profile_density = max(0.05, 0.5 * f.er_dia + 0.5 * f.ntdiags_ratio)
        return max(float(f.nnz) / profile_density, float(f.nnz))
    if fmt is FormatName.BDIA:
        # Same padded slot count as DIA (gap-free banding adds no fill).
        return max(float(f.ndiags * f.m), float(f.nnz))
    return float(f.nnz)


def _traffic(
    fmt: FormatName,
    f: FeatureVector,
    b: int,
    padded: float,
    blocked: bool,
    arch: Architecture,
) -> tuple:
    """(matrix_bytes, x_bytes, y_bytes) per SpMV."""
    idx = MODEL_INDEX_BYTES
    x_fits = f.n * b <= arch.llc_bytes() // 2
    miss = GATHER_MISS[fmt] * (0.55 if blocked else 1.0)

    if fmt is FormatName.CSR:
        matrix_bytes = f.nnz * (b + idx) + (f.m + 1) * idx
        x_bytes = f.n * b if x_fits else f.nnz * b * miss
        y_bytes = f.m * b
    elif fmt is FormatName.COO:
        matrix_bytes = f.nnz * (b + 2 * idx)
        x_bytes = f.n * b if x_fits else f.nnz * b * miss
        # Scatter-add reads and writes Y per element; most combine in cache
        # because the row-sorted stream hits each Y line repeatedly.
        y_bytes = f.nnz * b * 0.25
    elif fmt is FormatName.DIA:
        matrix_bytes = padded * b
        x_bytes = f.n * b if x_fits else padded * b * miss
        # Without row blocking Y streams once per (group of) diagonal(s).
        y_writes = 1.0 if blocked else min(float(max(f.ndiags, 1)), 4.0)
        y_bytes = f.m * b * y_writes
    elif fmt is FormatName.ELL:
        matrix_bytes = padded * (b + idx)
        x_bytes = f.n * b if x_fits else padded * b * miss
        y_writes = 1.0 if blocked else min(float(max(f.max_rd, 1)), 4.0)
        y_bytes = f.m * b * y_writes
    elif fmt is FormatName.BCSR:
        n_blocks = padded / 4.0
        matrix_bytes = padded * b + n_blocks * idx + (f.m / 2 + 1) * idx
        x_bytes = f.n * b if x_fits else f.nnz * b * miss
        y_bytes = f.m * b
    elif fmt is FormatName.CSC:
        matrix_bytes = f.nnz * (b + idx) + (f.n + 1) * idx
        x_bytes = f.n * b  # sequential column sweep
        # Y is the scatter target: read-modify-write per element.
        y_fits = f.m * b <= arch.llc_bytes() // 2
        y_bytes = f.m * b if y_fits else 2.0 * f.nnz * b * miss
    elif fmt is FormatName.SKY:
        matrix_bytes = padded * b + (f.m + 1) * idx
        x_bytes = f.n * b if x_fits else padded * b * miss
        y_bytes = f.m * b
    elif fmt is FormatName.BDIA:
        matrix_bytes = padded * b
        x_bytes = f.n * b if x_fits else padded * b * miss
        y_bytes = f.m * b  # whole bands write Y once
    else:  # HYB
        matrix_bytes = padded * (b + idx)
        x_bytes = f.n * b if x_fits else f.nnz * b * miss
        y_bytes = f.m * b * 1.5
    return float(matrix_bytes), float(x_bytes), float(y_bytes)


def _loop_overhead(
    fmt: FormatName, f: FeatureVector, unrolled: bool, blocked: bool
) -> float:
    """Bookkeeping cycles outside the multiply-add stream."""
    if fmt is FormatName.CSR:
        return f.m * ROW_LOOP_CYCLES
    if fmt is FormatName.COO:
        return f.nnz * SCATTER_CYCLES
    if fmt is FormatName.DIA:
        per_diag = DIAG_LOOP_CYCLES * (0.5 if unrolled else 1.0)
        return f.ndiags * per_diag
    if fmt is FormatName.ELL:
        return f.max_rd * SLOT_LOOP_CYCLES
    if fmt is FormatName.BCSR:
        return (f.m / 2.0) * ROW_LOOP_CYCLES
    if fmt is FormatName.CSC:
        return f.n * ROW_LOOP_CYCLES + f.nnz * SCATTER_CYCLES
    if fmt is FormatName.SKY:
        return f.m * ROW_LOOP_CYCLES * 0.6  # no index decode in the profile
    if fmt is FormatName.BDIA:
        # Per-band setup amortised over ~3 diagonals per band typically.
        return (f.ndiags / 3.0) * DIAG_LOOP_CYCLES
    return f.m * ROW_LOOP_CYCLES * 0.5  # HYB: ELL sweep + short COO tail


def _imbalance(fmt: FormatName, f: FeatureVector, parallel: bool) -> float:
    """Load-imbalance slowdown for row-partitioned parallel kernels."""
    if not parallel:
        return 1.0
    if fmt is FormatName.COO:
        return 1.0  # element partition: perfectly balanced
    if f.aver_rd <= 0:
        return 1.0
    cv = (f.var_rd ** 0.5) / f.aver_rd
    slowdown = 1.0 + IMBALANCE_CV_WEIGHT * min(cv, IMBALANCE_CV_CAP)
    if math.isfinite(f.r) and 1.0 <= f.r <= 4.0:
        # The penalty grows with the actual skew: a strong power law (hub
        # rows dominating, cv >= 2) makes a static row partition hopeless,
        # while a mild one (road networks, cv < 1) costs proportionally.
        slowdown += IMBALANCE_POWER_LAW_PENALTY * min(1.0, cv / 2.0)
    return min(IMBALANCE_CAP, slowdown)


def _structure_jitter(
    arch: Architecture,
    fmt: FormatName,
    f: FeatureVector,
    precision: Precision,
) -> float:
    """Deterministic per-(machine, format, matrix) factor in
    ``1 ± JITTER_AMPLITUDE``.

    Derived from a stable CRC of the identifying quantities — NOT Python's
    randomized ``hash`` — so training labels, bench tables and the
    execute-and-measure fallback all see the same "measurement".
    Kernel strategies are deliberately excluded: strategy *deltas* must stay
    exact so the scoreboard search (and its discard-below-0.01 rule) behaves
    as designed.
    """
    key = (
        f"{arch.name}|{fmt.value}|{precision.value}|{f.m}|{f.n}|{f.nnz}|"
        f"{f.ndiags}|{f.max_rd}|{f.var_rd:.6g}|{f.ntdiags_ratio:.6g}|{f.r:.6g}"
    )
    fraction = zlib.crc32(key.encode()) / 0xFFFFFFFF
    return 1.0 + JITTER_AMPLITUDE[fmt] * (2.0 * fraction - 1.0)
