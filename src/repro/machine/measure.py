"""Measurement backends: simulated testbed vs real wall clock.

The kernel search (Section 5.2) and the execute-and-measure fallback
(Section 6) both need to answer "how long does this kernel take on this
matrix".  Two interchangeable backends answer it:

* :class:`SimulatedBackend` — the analytic cost model configured with one of
  the paper's platform presets.  Deterministic, instantaneous, and the
  backend every paper-reproduction bench uses.
* :class:`WallClockBackend` — median wall time of actually running the NumPy
  kernel on this host.  Used by the wall-clock variants of the benches and
  by the quickstart example.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.features.parameters import FeatureVector
from repro.formats.base import SparseMatrix
from repro.kernels.base import Kernel
from repro.machine.arch import Architecture
from repro.machine.costmodel import estimate_spmv_time
from repro.types import Precision
from repro.util.timing import median_time


class MeasurementBackend(Protocol):
    """Anything that can time one SpMV kernel on one matrix."""

    def measure(
        self,
        kernel: Kernel,
        matrix: Optional[SparseMatrix],
        features: FeatureVector,
        x: Optional[np.ndarray] = None,
    ) -> float:
        """Seconds for one ``y = A @ x`` with ``kernel``."""
        ...


class SimulatedBackend:
    """Cost-model timing on a simulated platform."""

    def __init__(
        self, arch: Architecture, precision: Precision = Precision.DOUBLE
    ) -> None:
        self.arch = arch
        self.precision = precision

    def measure(
        self,
        kernel: Kernel,
        matrix: Optional[SparseMatrix],
        features: FeatureVector,
        x: Optional[np.ndarray] = None,
    ) -> float:
        return estimate_spmv_time(
            self.arch,
            kernel.format_name,
            features,
            precision=self.precision,
            strategies=kernel.strategies,
        )

    def __repr__(self) -> str:
        return (
            f"SimulatedBackend({self.arch.name!r}, "
            f"{self.precision.value})"
        )


class WallClockBackend:
    """Median-of-repeats wall-clock timing of the real NumPy kernels."""

    def __init__(self, repeats: int = 3, warmup: int = 1) -> None:
        self.repeats = repeats
        self.warmup = warmup

    def measure(
        self,
        kernel: Kernel,
        matrix: Optional[SparseMatrix],
        features: FeatureVector,
        x: Optional[np.ndarray] = None,
    ) -> float:
        if matrix is None:
            raise ValueError("WallClockBackend needs the actual matrix")
        if x is None:
            x = np.ones(matrix.n_cols, dtype=matrix.dtype)
        return median_time(
            lambda: kernel(matrix, x), repeats=self.repeats, warmup=self.warmup
        )

    def __repr__(self) -> str:
        return f"WallClockBackend(repeats={self.repeats})"


def gflops(nnz: int, seconds: float) -> float:
    """Useful GFLOPS of one SpMV: ``2 * nnz`` flops over ``seconds``."""
    if seconds <= 0.0:
        return 0.0
    return 2.0 * nnz / seconds / 1e9
