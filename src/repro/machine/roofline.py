"""Roofline analysis of SpMV kernels on the simulated machines.

A compact analysis layer over the cost model: for any (matrix features,
format, precision) triple it reports the arithmetic intensity, the
machine's ridge point, whether the kernel is memory- or compute-bound, and
the attainable-GFLOPS ceiling — the standard way to sanity-check why a
format wins or loses on a given matrix, and the lens the paper's Section 4
analysis implicitly uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.parameters import FeatureVector
from repro.kernels.strategies import Strategy, StrategySet, strategy_set
from repro.machine.arch import Architecture
from repro.machine.costmodel import REGULARITY, _padded_size, _traffic
from repro.types import FormatName, Precision

DEFAULT_STRATEGIES = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline."""

    format_name: FormatName
    #: Useful flops per byte of traffic (padding work excluded from flops,
    #: included in bytes — pessimistic, like measured GFLOPS).
    arithmetic_intensity: float
    #: flops/byte above which the machine turns compute-bound.
    ridge_point: float
    #: GFLOPS ceiling at this intensity.
    attainable_gflops: float
    memory_bound: bool

    def describe(self) -> str:
        regime = "memory-bound" if self.memory_bound else "compute-bound"
        return (
            f"{self.format_name.value}: AI={self.arithmetic_intensity:.3f} "
            f"flops/B (ridge {self.ridge_point:.3f}), "
            f"ceiling {self.attainable_gflops:.1f} GFLOPS, {regime}"
        )


def roofline_point(
    arch: Architecture,
    fmt: FormatName,
    features: FeatureVector,
    precision: Precision = Precision.DOUBLE,
    strategies: StrategySet = DEFAULT_STRATEGIES,
) -> RooflinePoint:
    """Place one (matrix, format) SpMV on ``arch``'s roofline."""
    blocked = Strategy.ROW_BLOCK in strategies
    threaded = (
        Strategy.PARALLEL in strategies or Strategy.THREAD in strategies
    )
    threads = arch.cores if threaded else 1

    padded = _padded_size(fmt, features)
    matrix_bytes, x_bytes, y_bytes = _traffic(
        fmt, features, precision.bytes_per_value, padded, blocked, arch
    )
    total_bytes = matrix_bytes + x_bytes + y_bytes
    useful_flops = 2.0 * features.nnz
    intensity = useful_flops / total_bytes if total_bytes else 0.0

    cache_resident = (
        matrix_bytes + features.n * precision.bytes_per_value
        <= arch.llc_bytes()
    )
    bandwidth = arch.bandwidth_bytes_per_s(threads, cache_resident)
    peak = (
        arch.peak_gflops(precision, threads) * REGULARITY[fmt]
    )
    ridge = peak * 1e9 / bandwidth
    attainable = min(peak, intensity * bandwidth / 1e9)
    return RooflinePoint(
        format_name=fmt,
        arithmetic_intensity=intensity,
        ridge_point=ridge,
        attainable_gflops=attainable,
        memory_bound=intensity < ridge,
    )


def roofline_report(
    arch: Architecture,
    features: FeatureVector,
    precision: Precision = Precision.DOUBLE,
    formats=(FormatName.DIA, FormatName.ELL, FormatName.CSR, FormatName.COO),
) -> str:
    """Multi-format roofline comparison for one matrix."""
    lines = [
        f"roofline on {arch.name} "
        f"({precision.value} precision, {arch.cores} threads):"
    ]
    for fmt in formats:
        point = roofline_point(arch, fmt, features, precision)
        lines.append("  " + point.describe())
    return "\n".join(lines)
