"""The paper's two evaluation platforms (Section 7.1).

Core counts, clocks, LLC sizes and DRAM bandwidths are the figures the paper
states; cache bandwidths are set to the machines' documented sustained L3
throughput class so that cache-resident matrices reach the paper's top
GFLOPS (51 SP on Intel at ~32% efficiency).
"""

from __future__ import annotations

from repro.machine.arch import Architecture

INTEL_XEON_X5680 = Architecture(
    name="Intel Xeon X5680",
    cores=12,
    frequency_ghz=3.3,
    simd_bytes=16,
    memory_bandwidth_gbs=31.0,
    cache_bandwidth_gbs=150.0,
    llc_mib=12.0,
)

AMD_OPTERON_6168 = Architecture(
    name="AMD Opteron 6168",
    cores=12,
    frequency_ghz=1.9,
    simd_bytes=16,
    memory_bandwidth_gbs=42.0,
    cache_bandwidth_gbs=100.0,
    llc_mib=12.0,
)

PLATFORMS = {
    "intel": INTEL_XEON_X5680,
    "amd": AMD_OPTERON_6168,
}


def platform(name: str) -> Architecture:
    """Look up a platform preset by short name ('intel' or 'amd')."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
