"""Calibrate a simulated :class:`Architecture` from host measurements.

SMAT's portability story (Section 3) is that the offline stage re-runs per
architecture.  When the target is the *local* machine rather than one of
the paper presets, this module measures a handful of probe kernels with
:class:`repro.machine.WallClockBackend` and fits the cost-model parameters
— effective bandwidths and compute throughput — so the simulated backend
approximates the host.  The fit is deliberately coarse (SpMV only needs
the memory rooflines right); its job is ordering formats, not predicting
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collection import banded
from repro.formats.convert import csr_to_dia
from repro.kernels.base import find_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine.arch import Architecture
from repro.types import FormatName
from repro.util.timing import median_time

#: Probe sizes: one comfortably cache-resident, one well past typical LLCs.
SMALL_ROWS = 20_000
LARGE_ROWS = 1_200_000
PROBE_DIAGS = 5


@dataclass(frozen=True)
class CalibrationResult:
    """The fitted architecture plus the raw probe measurements."""

    architecture: Architecture
    small_seconds: float
    large_seconds: float

    def describe(self) -> str:
        arch = self.architecture
        return (
            f"calibrated '{arch.name}': "
            f"memory {arch.memory_bandwidth_gbs:.1f} GB/s, "
            f"cache {arch.cache_bandwidth_gbs:.1f} GB/s, "
            f"{arch.cores} worker(s) @ {arch.frequency_ghz:.1f} GHz model"
        )


def calibrate_host(
    name: str = "calibrated host",
    repeats: int = 3,
) -> CalibrationResult:
    """Fit an :class:`Architecture` to this host's DIA streaming rates.

    The DIA kernel is pure streaming (no gather), so its achieved bytes/s
    on a cache-resident and a DRAM-sized banded matrix estimate the two
    bandwidth regimes directly.  Core count and frequency come from the OS;
    they only set the compute roofline, which SpMV rarely touches.
    """
    kernel = find_kernel(
        FormatName.DIA, strategy_set(Strategy.VECTORIZE, Strategy.ROW_BLOCK)
    )

    def run(n_rows: int) -> tuple:
        matrix = banded.banded_matrix(n_rows, PROBE_DIAGS, seed=0)
        dia, _ = csr_to_dia(matrix, fill_budget=None)
        x = np.ones(n_rows)
        seconds = median_time(lambda: kernel(dia, x), repeats=repeats)
        bytes_moved = dia.data.nbytes + 2 * x.nbytes
        return seconds, bytes_moved

    small_s, small_bytes = run(SMALL_ROWS)
    large_s, large_bytes = run(LARGE_ROWS)

    cache_gbs = small_bytes / small_s / 1e9
    memory_gbs = large_bytes / large_s / 1e9
    # The large probe can only be slower per byte; enforce the ordering the
    # cost model assumes.
    memory_gbs = min(memory_gbs, cache_gbs)

    arch = Architecture(
        name=name,
        # NumPy kernels are single-threaded: model one worker and let the
        # measured bandwidths absorb everything else.
        cores=1,
        frequency_ghz=2.5,
        simd_bytes=32,
        memory_bandwidth_gbs=max(memory_gbs, 0.1),
        cache_bandwidth_gbs=max(cache_gbs, 0.1),
        llc_mib=16.0,
        single_thread_bw_fraction=1.0,
    )
    return CalibrationResult(
        architecture=arch,
        small_seconds=small_s,
        large_seconds=large_s,
    )
