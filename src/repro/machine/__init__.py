"""Simulated machine model: architectures, cost model, measurement backends."""

from repro.machine.arch import Architecture
from repro.machine.costmodel import (
    CostBreakdown,
    cost_breakdown,
    estimate_gflops,
    estimate_spmv_time,
)
from repro.machine.measure import (
    MeasurementBackend,
    SimulatedBackend,
    WallClockBackend,
    gflops,
)
from repro.machine.calibrate import CalibrationResult, calibrate_host
from repro.machine.roofline import RooflinePoint, roofline_point, roofline_report
from repro.machine.presets import (
    AMD_OPTERON_6168,
    INTEL_XEON_X5680,
    PLATFORMS,
    platform,
)

__all__ = [
    "AMD_OPTERON_6168",
    "Architecture",
    "CalibrationResult",
    "CostBreakdown",
    "calibrate_host",
    "INTEL_XEON_X5680",
    "MeasurementBackend",
    "PLATFORMS",
    "RooflinePoint",
    "roofline_point",
    "roofline_report",
    "SimulatedBackend",
    "WallClockBackend",
    "cost_breakdown",
    "estimate_gflops",
    "estimate_spmv_time",
    "gflops",
    "platform",
]
