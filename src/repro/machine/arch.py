"""Architecture descriptions.

SMAT quantizes architecture features through the *performance of SpMV
implementations* rather than using raw hardware counters (Section 3).  The
simulated machine therefore only needs the handful of parameters that shape
SpMV behaviour: core count, clock, SIMD width, the memory hierarchy's two
bandwidth regimes, and the last-level cache capacity that separates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import Precision


@dataclass(frozen=True)
class Architecture:
    """A multi-core x86 machine as seen by the SpMV cost model."""

    name: str
    cores: int
    frequency_ghz: float
    #: SIMD register width in bytes (16 for SSE — both paper machines).
    simd_bytes: int
    #: Sustained DRAM bandwidth in GB/s (paper: 31 Intel, 42 AMD).
    memory_bandwidth_gbs: float
    #: Sustained last-level-cache bandwidth in GB/s.
    cache_bandwidth_gbs: float
    #: Shared last-level cache in MiB (12 on both paper machines).
    llc_mib: float
    #: Fraction of DRAM bandwidth one thread can drive on its own.
    single_thread_bw_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.simd_bytes < 4:
            raise ValueError("simd_bytes must hold at least one float")

    def simd_lanes(self, precision: Precision) -> int:
        """Values per SIMD register (4 SP / 2 DP with SSE)."""
        return max(1, self.simd_bytes // precision.bytes_per_value)

    def peak_gflops(self, precision: Precision, threads: int) -> float:
        """Peak arithmetic throughput: one multiply + one add per lane
        per cycle across ``threads`` cores."""
        threads = min(max(threads, 1), self.cores)
        return (
            self.frequency_ghz * 2.0 * self.simd_lanes(precision) * threads
        )

    def llc_bytes(self) -> int:
        return int(self.llc_mib * 1024 * 1024)

    def bandwidth_bytes_per_s(self, threads: int, cache_resident: bool) -> float:
        """Effective bandwidth for a working set that is (or is not) cache
        resident, scaled for the number of active threads."""
        base = (
            self.cache_bandwidth_gbs if cache_resident else self.memory_bandwidth_gbs
        )
        threads = min(max(threads, 1), self.cores)
        if threads == 1:
            scale = self.single_thread_bw_fraction
        else:
            # Bandwidth saturates well before all cores are streaming.
            scale = min(1.0, self.single_thread_bw_fraction * threads)
        return base * 1e9 * scale
