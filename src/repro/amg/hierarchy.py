"""AMG hierarchy setup: levels of grid and transfer operators (Figure 11).

The setup process builds operators ``A_0 ... A_{N-1}`` and transfers
``P_0 ... P_{N-2}`` by repeated strength/coarsen/interpolate/Galerkin steps
— the "series of different sparse matrices" whose drifting structure
motivates SMAT's per-level format selection (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.amg.coarsen import coarsen
from repro.amg.engine import CsrEngine, PreparedOperator, SpmvEngine
from repro.amg.interpolation import direct_interpolation
from repro.amg.strength import DEFAULT_THETA, strength_graph
from repro.errors import SolverError
from repro.formats.csr import CSRMatrix
from repro.formats.ops import matmul, transpose
from repro.util.rng import SeedLike


@dataclass
class Level:
    """One grid level: its operator, transfers, and prepared kernels."""

    matrix: CSRMatrix
    a_op: PreparedOperator
    #: Prolongation to this level from the next-coarser one (None on the
    #: coarsest level).
    p: Optional[CSRMatrix] = None
    p_op: Optional[PreparedOperator] = None
    r: Optional[CSRMatrix] = None
    r_op: Optional[PreparedOperator] = None
    diag: Optional[np.ndarray] = None


@dataclass
class Hierarchy:
    """The assembled multigrid hierarchy."""

    levels: List[Level]
    coarsen_method: str

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def operator_complexity(self) -> float:
        """sum(nnz of all A) / nnz(A_0) — the standard AMG quality metric."""
        fine_nnz = self.levels[0].matrix.nnz
        return sum(level.matrix.nnz for level in self.levels) / fine_nnz

    def simulated_seconds(self) -> float:
        """Total simulated SpMV time across all prepared operators."""
        total = 0.0
        for level in self.levels:
            total += level.a_op.simulated_seconds
            if level.p_op is not None:
                total += level.p_op.simulated_seconds
            if level.r_op is not None:
                total += level.r_op.simulated_seconds
        return total

    def format_by_level(self) -> List[dict]:
        """Per-level chosen formats — the Figure 1 story."""
        rows = []
        for i, level in enumerate(self.levels):
            rows.append(
                {
                    "level": i,
                    "rows": level.matrix.n_rows,
                    "nnz": level.matrix.nnz,
                    "a_format": level.a_op.format_name.value,
                    "p_format": (
                        level.p_op.format_name.value if level.p_op else None
                    ),
                }
            )
        return rows


def setup_hierarchy(
    matrix: CSRMatrix,
    engine: Optional[SpmvEngine] = None,
    coarsen_method: str = "rugeL",
    theta: float = DEFAULT_THETA,
    max_levels: int = 12,
    min_coarse: int = 40,
    seed: SeedLike = 0,
) -> Hierarchy:
    """Build the multigrid hierarchy for ``matrix``."""
    if matrix.n_rows != matrix.n_cols:
        raise SolverError(f"AMG needs a square operator, got {matrix.shape}")
    engine = engine or CsrEngine()

    from repro.formats.ops import diagonal as diag_of

    levels: List[Level] = []
    current = matrix
    while True:
        level = Level(
            matrix=current,
            a_op=engine.prepare(current),
            diag=diag_of(current),
        )
        levels.append(level)
        if len(levels) >= max_levels or current.n_rows <= min_coarse:
            break

        strength = strength_graph(current, theta=theta)
        coarse_mask = coarsen(strength, method=coarsen_method, seed=seed)
        n_coarse = int(coarse_mask.sum())
        if n_coarse == 0 or n_coarse >= current.n_rows:
            break  # coarsening stalled; stop here
        p = direct_interpolation(current, strength, coarse_mask)
        r = transpose(p)
        level.p = p
        level.p_op = engine.prepare(p)
        level.r = r
        level.r_op = engine.prepare(r)
        current = matmul(r, matmul(current, p))
        if current.n_rows >= level.matrix.n_rows:
            break

    return Hierarchy(levels=levels, coarsen_method=coarsen_method)
