"""Algebraic multigrid substrate — the Hypre substitute (Section 7.4)."""

from repro.amg.coarsen import COARSENERS, cljp_coarsen, coarsen, ruge_stueben_coarsen
from repro.amg.engine import CsrEngine, PreparedOperator, SmatEngine, SpmvEngine
from repro.amg.hierarchy import Hierarchy, Level, setup_hierarchy
from repro.amg.interpolation import direct_interpolation
from repro.amg.krylov import CGReport, amg_preconditioner, conjugate_gradient
from repro.amg.relaxation import chebyshev, gauss_seidel, jacobi
from repro.amg.solver import AMGSolver, SolveReport
from repro.amg.strength import strength_graph

__all__ = [
    "AMGSolver",
    "CGReport",
    "COARSENERS",
    "CsrEngine",
    "amg_preconditioner",
    "chebyshev",
    "conjugate_gradient",
    "Hierarchy",
    "Level",
    "PreparedOperator",
    "SmatEngine",
    "SolveReport",
    "SpmvEngine",
    "cljp_coarsen",
    "coarsen",
    "direct_interpolation",
    "gauss_seidel",
    "jacobi",
    "ruge_stueben_coarsen",
    "setup_hierarchy",
    "strength_graph",
]
