"""C/F splitting: the two coarsening algorithms of Table 4.

``rugeL`` is the classical Ruge-Stüben first pass (greedy, measure-driven);
``cljp`` is a CLJP-style parallel independent-set selection with random
tie-breaking weights.  Both return a boolean mask: True = coarse point.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.ops import transpose
from repro.util.rng import SeedLike, make_rng


def ruge_stueben_coarsen(strength: CSRMatrix, seed: SeedLike = 0) -> np.ndarray:
    """Classical RS first-pass coarsening.

    The measure of a point is how many others strongly depend on it
    (its S^T degree).  Greedily pick the highest-measure unassigned point as
    C; points strongly depending on it become F; each F-assignment boosts
    the measure of the F-point's other strong influences.
    """
    n = strength.n_rows
    s_t = transpose(strength)

    measure = np.diff(s_t.ptr).astype(np.float64)
    # Tiny random jitter breaks ties deterministically per seed.
    measure += make_rng(seed).random(n) * 0.01

    UNASSIGNED, COARSE, FINE = 0, 1, 2
    state = np.zeros(n, dtype=np.int8)

    heap = [(-measure[i], i) for i in range(n)]
    heapq.heapify(heap)

    def influenced_by(point: int) -> np.ndarray:
        start, end = int(s_t.ptr[point]), int(s_t.ptr[point + 1])
        return s_t.indices[start:end]

    def influences_of(point: int) -> np.ndarray:
        start, end = int(strength.ptr[point]), int(strength.ptr[point + 1])
        return strength.indices[start:end]

    while heap:
        neg_measure, point = heapq.heappop(heap)
        if state[point] != UNASSIGNED:
            continue
        if -neg_measure < measure[point]:  # stale heap entry
            heapq.heappush(heap, (-measure[point], point))
            continue
        state[point] = COARSE
        for dependent in influenced_by(point):
            dep = int(dependent)
            if state[dep] != UNASSIGNED:
                continue
            state[dep] = FINE
            for influence in influences_of(dep):
                inf_pt = int(influence)
                if state[inf_pt] == UNASSIGNED:
                    measure[inf_pt] += 1.0
                    heapq.heappush(heap, (-measure[inf_pt], inf_pt))

    # Isolated leftovers (no strong connections at all) become coarse so
    # interpolation never strands them.
    state[state == UNASSIGNED] = COARSE
    return state == COARSE


def cljp_coarsen(strength: CSRMatrix, seed: SeedLike = 0) -> np.ndarray:
    """CLJP-style coarsening: iterative random-weighted independent sets.

    Each round selects every unassigned point whose weight beats all of its
    unassigned strong neighbours (both directions), then F-assigns the
    points strongly coupled to a new C point.  Fully vectorized per round —
    the parallel-friendly structure that distinguishes CLJP from RS.
    """
    n = strength.n_rows
    s_t = transpose(strength)
    rng = make_rng(seed)

    weights = np.diff(s_t.ptr).astype(np.float64) + rng.random(n)

    UNASSIGNED, COARSE, FINE = 0, 1, 2
    state = np.zeros(n, dtype=np.int8)

    rows_s = np.repeat(np.arange(n, dtype=np.int64), np.diff(strength.ptr))
    rows_t = np.repeat(np.arange(n, dtype=np.int64), np.diff(s_t.ptr))
    # The undirected neighbour relation: S united with S^T.
    edge_src = np.concatenate([rows_s, rows_t])
    edge_dst = np.concatenate([strength.indices, s_t.indices])

    for _ in range(n):  # each round assigns >= 1 point; usually O(log n)
        unassigned = state == UNASSIGNED
        if not np.any(unassigned):
            break
        live = unassigned[edge_src] & unassigned[edge_dst]
        neighbour_best = np.zeros(n)
        np.maximum.at(neighbour_best, edge_src[live], weights[edge_dst[live]])
        winners = unassigned & (weights > neighbour_best)
        if not np.any(winners):
            # Remaining unassigned points have no live neighbours.
            state[unassigned] = COARSE
            break
        state[winners] = COARSE
        # F-assign unassigned points strongly coupled to any new C point.
        touched = winners[edge_dst] & (state[edge_src] == UNASSIGNED)
        state[edge_src[touched]] = FINE

    state[state == UNASSIGNED] = COARSE
    return state == COARSE


COARSENERS: Dict[str, Callable[..., np.ndarray]] = {
    "rugeL": ruge_stueben_coarsen,
    "cljp": cljp_coarsen,
}


def coarsen(
    strength: CSRMatrix, method: str = "rugeL", seed: SeedLike = 0
) -> np.ndarray:
    """Dispatch to one of Table 4's coarsening methods."""
    try:
        algorithm = COARSENERS[method]
    except KeyError:
        raise KeyError(
            f"unknown coarsening method {method!r}; "
            f"available: {sorted(COARSENERS)}"
        ) from None
    return algorithm(strength, seed=seed)
