"""The AMG solver: V-cycle iteration on a hierarchy (Figure 11).

``AMGSolver`` ties setup and solve together and accounts for both wall
clock and simulated SpMV time, which is how the Table 4 bench compares
"Hypre AMG" (CsrEngine) against "SMAT AMG" (SmatEngine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.amg.engine import CsrEngine, SpmvEngine
from repro.amg.hierarchy import Hierarchy, setup_hierarchy
from repro.amg.relaxation import DEFAULT_JACOBI_WEIGHT, chebyshev, jacobi
from repro.errors import SolverError
from repro.formats.csr import CSRMatrix
from repro.util.rng import SeedLike


@dataclass
class SolveReport:
    """Outcome of one AMG solve."""

    converged: bool
    iterations: int
    residual_norms: List[float]
    simulated_seconds: float

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]

    def convergence_factor(self) -> float:
        """Geometric-mean residual reduction per V-cycle."""
        norms = self.residual_norms
        if len(norms) < 2 or norms[0] == 0.0:
            return 0.0
        return (norms[-1] / norms[0]) ** (1.0 / (len(norms) - 1))


class AMGSolver:
    """Algebraic multigrid solver with a pluggable SpMV engine."""

    def __init__(
        self,
        matrix: CSRMatrix,
        engine: Optional[SpmvEngine] = None,
        coarsen_method: str = "rugeL",
        smoother: str = "jacobi",
        pre_sweeps: int = 1,
        post_sweeps: int = 1,
        jacobi_weight: float = DEFAULT_JACOBI_WEIGHT,
        max_levels: int = 12,
        min_coarse: int = 40,
        seed: SeedLike = 0,
    ) -> None:
        if smoother not in ("jacobi", "chebyshev"):
            raise SolverError(
                f"unknown smoother {smoother!r}; use 'jacobi' or 'chebyshev'"
            )
        self.engine = engine or CsrEngine()
        self.smoother = smoother
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.jacobi_weight = jacobi_weight
        self.hierarchy: Hierarchy = setup_hierarchy(
            matrix,
            engine=self.engine,
            coarsen_method=coarsen_method,
            max_levels=max_levels,
            min_coarse=min_coarse,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        max_cycles: int = 60,
    ) -> tuple:
        """Run V-cycles until the relative residual drops below ``tol``.

        Returns ``(x, report)``.
        """
        fine = self.hierarchy.levels[0]
        b = np.asarray(b, dtype=fine.matrix.dtype)
        if b.shape[0] != fine.matrix.n_rows:
            raise SolverError(
                f"rhs has {b.shape[0]} entries for a "
                f"{fine.matrix.n_rows}-row operator"
            )
        x = (
            np.zeros_like(b)
            if x0 is None
            else np.asarray(x0, dtype=b.dtype).copy()
        )

        start_sim = self.hierarchy.simulated_seconds()
        b_norm = float(np.linalg.norm(b)) or 1.0
        norms = [float(np.linalg.norm(b - fine.a_op(x)))]
        converged = False
        cycles = 0
        for cycles in range(1, max_cycles + 1):
            x = self._cycle(0, x, b)
            residual = float(np.linalg.norm(b - fine.a_op(x)))
            norms.append(residual)
            if residual / b_norm < tol:
                converged = True
                break
            if not np.isfinite(residual):
                raise SolverError("AMG diverged (non-finite residual)")

        report = SolveReport(
            converged=converged,
            iterations=cycles,
            residual_norms=norms,
            simulated_seconds=self.hierarchy.simulated_seconds() - start_sim,
        )
        return x, report

    # ------------------------------------------------------------------
    def _cycle(self, depth: int, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        level = self.hierarchy.levels[depth]
        if depth == self.hierarchy.n_levels - 1:
            return self._coarse_solve(level, b)

        assert level.diag is not None
        x = self._smooth(level, x, b, self.pre_sweeps)
        residual = b - level.a_op(x)
        assert level.r_op is not None and level.p_op is not None
        coarse_b = level.r_op(residual)
        coarse_x = self._cycle(
            depth + 1, np.zeros_like(coarse_b), coarse_b
        )
        x = x + level.p_op(coarse_x)
        x = self._smooth(level, x, b, self.post_sweeps)
        return x

    def _smooth(self, level, x: np.ndarray, b: np.ndarray,
                sweeps: int) -> np.ndarray:
        assert level.diag is not None
        if self.smoother == "chebyshev":
            return chebyshev(
                level.a_op, level.diag, x, b, degree=max(sweeps, 2)
            )
        return jacobi(
            level.a_op, level.diag, x, b,
            sweeps=sweeps, weight=self.jacobi_weight,
        )

    def _coarse_solve(self, level, b: np.ndarray) -> np.ndarray:
        """Dense direct solve on the coarsest level."""
        dense = level.matrix.to_dense()
        try:
            return np.linalg.solve(dense, b)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(dense, b, rcond=None)
            return solution
