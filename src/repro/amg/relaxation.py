"""Smoothers: weighted Jacobi and Gauss-Seidel.

The paper's AMG relaxations are "Jacobi and Gauss-Seidel methods with SpMV
kernel".  Weighted Jacobi is the default here: it is expressible entirely
through the tuned SpMV operator, so every relaxation exercises whatever
format SMAT picked for the level.
"""

from __future__ import annotations

import numpy as np

from repro.amg.engine import PreparedOperator
from repro.errors import SolverError
from repro.formats.csr import CSRMatrix

DEFAULT_JACOBI_WEIGHT = 2.0 / 3.0


def jacobi(
    a_op: PreparedOperator,
    diag: np.ndarray,
    x: np.ndarray,
    b: np.ndarray,
    sweeps: int = 1,
    weight: float = DEFAULT_JACOBI_WEIGHT,
) -> np.ndarray:
    """``sweeps`` weighted-Jacobi iterations: x += w * D^-1 (b - A x)."""
    if np.any(diag == 0.0):
        raise SolverError("Jacobi smoother needs a zero-free diagonal")
    inv_diag = weight / diag
    for _ in range(sweeps):
        x = x + inv_diag * (b - a_op(x))
    return x


def chebyshev(
    a_op: PreparedOperator,
    diag: np.ndarray,
    x: np.ndarray,
    b: np.ndarray,
    degree: int = 3,
    eig_upper: float = 2.0,
    eig_lower_fraction: float = 1.0 / 30.0,
) -> np.ndarray:
    """Chebyshev polynomial smoothing on the diagonally-scaled operator.

    The standard communication-free alternative to Gauss-Seidel in parallel
    AMG (Hypre offers it for the same reason the paper's kernels avoid
    sequential sweeps): only SpMV and AXPY operations, so every application
    runs through the tuned kernel.  ``eig_upper`` bounds the spectrum of
    ``D^-1 A`` (2.0 is safe for scaled SPD Laplacians); the polynomial
    targets ``[eig_upper * eig_lower_fraction, eig_upper]``.
    """
    if degree < 1:
        raise SolverError(f"Chebyshev degree must be >= 1, got {degree}")
    if np.any(diag == 0.0):
        raise SolverError("Chebyshev smoother needs a zero-free diagonal")
    inv_diag = 1.0 / diag
    lower = eig_upper * eig_lower_fraction
    theta = 0.5 * (eig_upper + lower)
    delta = 0.5 * (eig_upper - lower)

    # Standard three-term Chebyshev recurrence on the residual equation.
    residual = inv_diag * (b - a_op(x))
    correction = residual / theta
    x = x + correction
    rho_old = delta / theta
    for _ in range(degree - 1):
        residual = inv_diag * (b - a_op(x))
        rho = 1.0 / (2.0 * theta / delta - rho_old)
        correction = (
            2.0 * rho / delta
        ) * residual + rho * rho_old * correction
        x = x + correction
        rho_old = rho
    return x


def gauss_seidel(
    matrix: CSRMatrix,
    x: np.ndarray,
    b: np.ndarray,
    sweeps: int = 1,
) -> np.ndarray:
    """Forward Gauss-Seidel sweeps (reference smoother, row loop).

    Inherently sequential, so it bypasses the tuned operator; used by tests
    and small examples to cross-check Jacobi's behaviour.
    """
    x = x.copy()
    for _ in range(sweeps):
        for i in range(matrix.n_rows):
            start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
            cols = matrix.indices[start:end]
            vals = matrix.data[start:end]
            diag_positions = cols == i
            diag = vals[diag_positions]
            if diag.shape[0] == 0 or diag[0] == 0.0:
                raise SolverError(f"zero diagonal at row {i}")
            acc = b[i] - np.dot(vals[~diag_positions], x[cols[~diag_positions]])
            x[i] = acc / diag[0]
    return x
