"""Preconditioned conjugate gradients with an AMG preconditioner.

Section 7.1: "Algebraic Multigrid (AMG) is used as a preconditioner such
as conjugate gradients to solve large-scale scientific simulation
problems".  This module supplies that outer solver: plain CG and
AMG-preconditioned CG (one V-cycle per application), both running every
matrix-vector product through a pluggable prepared SpMV operator so the
SMAT engine accelerates the Krylov iteration exactly as it accelerates the
V-cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.amg.solver import AMGSolver
from repro.errors import SolverError
from repro.formats.csr import CSRMatrix


@dataclass
class CGReport:
    """Outcome of one (preconditioned) CG solve."""

    converged: bool
    iterations: int
    residual_norms: List[float]

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1]


def conjugate_gradient(
    matrix: CSRMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    spmv: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> tuple:
    """(P)CG for a symmetric positive-definite system ``A x = b``.

    ``spmv`` overrides the operator application (pass an SMAT-prepared
    operator); ``preconditioner`` applies ``M^-1`` (pass
    :func:`amg_preconditioner`'s result for AMG-PCG).  Returns
    ``(x, CGReport)``.
    """
    if matrix.n_rows != matrix.n_cols:
        raise SolverError(f"CG needs a square operator, got {matrix.shape}")
    b = np.asarray(b, dtype=matrix.dtype)
    if b.shape[0] != matrix.n_rows:
        raise SolverError(
            f"rhs has {b.shape[0]} entries for a {matrix.n_rows}-row system"
        )
    apply_a = spmv if spmv is not None else matrix.spmv
    apply_m = preconditioner if preconditioner is not None else (lambda r: r)

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=b.dtype).copy()
    r = b - apply_a(x)
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0
    norms = [float(np.linalg.norm(r))]

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        ap = apply_a(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            raise SolverError(
                "operator is not positive definite (p^T A p <= 0)"
            )
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        norms.append(float(np.linalg.norm(r)))
        if norms[-1] / b_norm < tol:
            converged = True
            break
        z = apply_m(r)
        rz_next = float(r @ z)
        beta = rz_next / rz
        rz = rz_next
        p = z + beta * p

    return x, CGReport(
        converged=converged, iterations=iterations, residual_norms=norms
    )


def amg_preconditioner(
    solver: AMGSolver, cycles: int = 1
) -> Callable[[np.ndarray], np.ndarray]:
    """``M^-1 r``: ``cycles`` V-cycles of ``solver`` from a zero guess.

    One V-cycle is the standard AMG-PCG preconditioner; it is a fixed
    linear operation (Jacobi smoothing, fixed hierarchy), so CG's
    requirements hold.
    """
    if cycles < 1:
        raise SolverError(f"cycles must be >= 1, got {cycles}")

    def apply(r: np.ndarray) -> np.ndarray:
        z = np.zeros_like(r)
        for _ in range(cycles):
            z = solver._cycle(0, z, r)
        return z

    return apply
