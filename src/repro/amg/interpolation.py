"""Direct interpolation (classical AMG prolongation).

Coarse points interpolate themselves (identity rows); each fine point
interpolates from its strong coarse neighbours with the classical direct
weights ``w_ij = -beta_i * a_ij / a_ii`` where ``beta_i`` rescales so the
full row sum is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.formats.csr import CSRMatrix
from repro.formats.ops import diagonal
from repro.types import INDEX_DTYPE


def direct_interpolation(
    matrix: CSRMatrix, strength: CSRMatrix, coarse_mask: np.ndarray
) -> CSRMatrix:
    """Build the prolongation ``P`` (n_fine+n_coarse x n_coarse)."""
    n = matrix.n_rows
    coarse_mask = np.asarray(coarse_mask, dtype=bool)
    if coarse_mask.shape[0] != n:
        raise SolverError(
            f"coarse mask needs {n} entries, got {coarse_mask.shape[0]}"
        )
    n_coarse = int(coarse_mask.sum())
    if n_coarse == 0:
        raise SolverError("coarsening selected no coarse points")
    coarse_id = np.full(n, -1, dtype=INDEX_DTYPE)
    coarse_id[coarse_mask] = np.arange(n_coarse, dtype=INDEX_DTYPE)

    diag = diagonal(matrix)
    if np.any(diag == 0.0):
        raise SolverError("matrix has zero diagonal entries")

    degrees = matrix.row_degrees()
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    cols = matrix.indices
    vals = matrix.data
    off_diag = rows != cols

    # Strong C-neighbour flags per stored entry: an entry (i, j) interpolates
    # when j is coarse and (i, j) is a strong connection.
    strong = _entry_strength_mask(matrix, strength)
    interp_entry = off_diag & strong & coarse_mask[cols] & ~coarse_mask[rows]

    # beta_i = (sum of all off-diagonal a_ik) / (sum over interp entries).
    row_sum = np.zeros(n)
    np.add.at(row_sum, rows[off_diag], vals[off_diag])
    interp_sum = np.zeros(n)
    np.add.at(interp_sum, rows[interp_entry], vals[interp_entry])

    fine_mask = ~coarse_mask
    no_anchor = fine_mask & (interp_sum == 0.0)
    if np.any(no_anchor):
        # Fine points with no strong coarse neighbour cannot interpolate;
        # promote them (standard second-pass fix-up).
        coarse_mask = coarse_mask | no_anchor
        return direct_interpolation(matrix, strength, coarse_mask)

    beta = np.zeros(n)
    beta[fine_mask] = row_sum[fine_mask] / interp_sum[fine_mask]

    p_rows = [np.nonzero(coarse_mask)[0].astype(INDEX_DTYPE)]
    p_cols = [coarse_id[coarse_mask]]
    p_vals = [np.ones(n_coarse, dtype=matrix.dtype)]

    fr = rows[interp_entry]
    p_rows.append(fr)
    p_cols.append(coarse_id[cols[interp_entry]])
    p_vals.append(
        (-beta[fr] * vals[interp_entry] / diag[fr]).astype(matrix.dtype)
    )

    return CSRMatrix.from_triplets(
        np.concatenate(p_rows),
        np.concatenate(p_cols),
        np.concatenate(p_vals),
        (n, n_coarse),
    )


def _entry_strength_mask(
    matrix: CSRMatrix, strength: CSRMatrix
) -> np.ndarray:
    """Boolean per-stored-entry: is (row, col) a strong connection?

    Both matrices have canonically sorted rows, so a merged key comparison
    (row * n_cols + col) with ``np.isin``-style search stays vectorized.
    """
    n_cols = matrix.n_cols
    m_rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    s_rows = np.repeat(
        np.arange(strength.n_rows, dtype=INDEX_DTYPE), strength.row_degrees()
    )
    m_keys = m_rows * n_cols + matrix.indices
    s_keys = s_rows * n_cols + strength.indices
    positions = np.searchsorted(s_keys, m_keys)
    positions = np.minimum(positions, max(s_keys.shape[0] - 1, 0))
    if s_keys.shape[0] == 0:
        return np.zeros(m_keys.shape[0], dtype=bool)
    return s_keys[positions] == m_keys
