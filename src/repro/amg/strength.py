"""Classical strength-of-connection (Ruge-Stüben).

Point ``i`` strongly depends on ``j`` when ``-a_ij >= theta * max_k(-a_ik)``
over off-diagonal entries.  The strength graph drives both coarsening
algorithms and the interpolation stencil.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE

DEFAULT_THETA = 0.25


def strength_graph(matrix: CSRMatrix, theta: float = DEFAULT_THETA) -> CSRMatrix:
    """The strong-dependence graph as a 0/1 CSR matrix (no diagonal).

    Connections are judged by magnitude against the row's strongest
    off-diagonal coupling; a symmetric M-matrix (our Laplacians) reduces to
    the textbook ``-a_ij >= theta * max(-a_ik)`` rule.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    n = matrix.n_rows
    degrees = matrix.row_degrees()
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    off_diag = rows != matrix.indices
    coupling = np.where(off_diag, -matrix.data, -np.inf)

    # Strongest off-diagonal coupling per row.
    row_max = np.full(n, -np.inf)
    np.maximum.at(row_max, rows, coupling)

    # Rows with no negative off-diagonal couple through magnitudes instead
    # (keeps the graph meaningful for non-M-matrices).
    weak_rows = row_max <= 0.0
    if np.any(weak_rows):
        magnitude = np.where(off_diag, np.abs(matrix.data), -np.inf)
        mag_max = np.full(n, -np.inf)
        np.maximum.at(mag_max, rows, magnitude)
        use_mag = weak_rows[rows]
        coupling = np.where(use_mag, magnitude, coupling)
        row_max = np.where(weak_rows, mag_max, row_max)

    strong = off_diag & (coupling >= theta * row_max[rows]) & (
        coupling > 0.0
    )
    return CSRMatrix.from_triplets(
        rows[strong],
        matrix.indices[strong],
        np.ones(int(strong.sum()), dtype=matrix.dtype),
        matrix.shape,
    )
