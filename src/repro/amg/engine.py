"""Pluggable SpMV engines for the AMG solver.

The paper's Table 4 experiment swaps exactly one thing inside Hypre: the
SpMV kernel behind the A- and P-operators.  :class:`CsrEngine` is the
Hypre baseline (every operator stays CSR); :class:`SmatEngine` routes every
operator through the SMAT tuner, which picks DIA for fine-level
A-operators, ELL for most P-operators, and so on.

Each prepared operator carries a *simulated* per-apply time from the cost
model, so the bench can report Table 4's execution times deterministically;
wall-clock timing of the real NumPy kernels works too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.features.extract import extract_features
from repro.formats.csr import CSRMatrix
from repro.kernels.base import Kernel, find_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine.costmodel import estimate_spmv_time
from repro.machine.measure import SimulatedBackend
from repro.types import FormatName


@dataclass
class PreparedOperator:
    """A matrix bound to a kernel, with apply-time accounting."""

    matrix: object
    kernel: Kernel
    #: Simulated seconds for one apply (0.0 when no simulated backend).
    seconds_per_apply: float
    #: One-time tuning + conversion cost in CSR-SpMV units.
    setup_units: float = 0.0
    applies: int = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.applies += 1
        return self.kernel(self.matrix, x)

    @property
    def format_name(self) -> FormatName:
        return self.kernel.format_name

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time spent in this operator so far."""
        return self.applies * self.seconds_per_apply


class SpmvEngine(Protocol):
    """Anything that can turn a CSR operator into a prepared SpMV."""

    def prepare(self, matrix: CSRMatrix) -> PreparedOperator: ...


class CsrEngine:
    """The Hypre baseline: every operator stays in CSR."""

    def __init__(self, backend: Optional[SimulatedBackend] = None) -> None:
        self.backend = backend
        self._kernel = find_kernel(
            FormatName.CSR,
            strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL),
        )

    def prepare(self, matrix: CSRMatrix) -> PreparedOperator:
        seconds = 0.0
        if self.backend is not None:
            seconds = estimate_spmv_time(
                self.backend.arch,
                FormatName.CSR,
                extract_features(matrix),
                self.backend.precision,
                self._kernel.strategies,
            )
        return PreparedOperator(
            matrix=matrix, kernel=self._kernel, seconds_per_apply=seconds
        )


class SmatEngine:
    """SMAT-tuned operators: per-level format and kernel selection."""

    def __init__(self, smat) -> None:
        self.smat = smat

    def prepare(self, matrix: CSRMatrix) -> PreparedOperator:
        decision = self.smat.decide(matrix)
        if decision.matrix is None:  # pragma: no cover - decide always sets it
            decision.matrix = matrix
        seconds = 0.0
        if isinstance(self.smat.backend, SimulatedBackend):
            seconds = estimate_spmv_time(
                self.smat.backend.arch,
                decision.format_name,
                extract_features(matrix),
                self.smat.backend.precision,
                decision.kernel.strategies,
            )
        return PreparedOperator(
            matrix=decision.matrix,
            kernel=decision.kernel,
            seconds_per_apply=seconds,
            setup_units=decision.overhead_units,
        )
