"""Banded / diagonal-structured matrix generators.

Stand-ins for the UF collection's structural, materials, electromagnetics
and quantum-chemistry matrices: a modest number of diagonals, most of them
dense ("true"), occasionally perturbed so NTdiags_ratio and ER_DIA sweep the
ranges Figure 6 plots.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.collection.grids import stencil_matrix
from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.rng import SeedLike, make_rng


def banded_matrix(
    n: int,
    n_diags: int,
    seed: SeedLike = None,
    occupancy: float = 1.0,
    spread: Optional[int] = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A matrix with ``n_diags`` diagonals, each ``occupancy`` dense.

    ``spread`` bounds how far offsets stray from the principal diagonal
    (defaults to ``4 * n_diags``); lowering ``occupancy`` below ~0.6 turns
    diagonals "false" and pushes the matrix out of DIA territory — the knob
    used to sweep Figure 6(c).
    """
    rng = make_rng(seed)
    if n_diags < 1:
        raise ValueError(f"n_diags must be >= 1, got {n_diags}")
    spread = spread if spread is not None else max(4 * n_diags, 8)
    spread = min(spread, n - 1)
    candidates = np.arange(-spread, spread + 1)
    candidates = candidates[candidates != 0]
    extra = rng.choice(
        candidates, size=min(n_diags - 1, candidates.size), replace=False
    )
    offsets = np.concatenate([[0], extra]) if n_diags > 1 else np.array([0])

    rows_list = []
    cols_list = []
    vals_list = []
    for k in offsets:
        k = int(k)
        start, end = max(0, -k), min(n, n - k)
        if end <= start:
            continue
        rr = np.arange(start, end, dtype=INDEX_DTYPE)
        if occupancy < 1.0:
            rr = rr[rng.random(rr.shape[0]) < occupancy]
        if rr.size == 0:
            continue
        rows_list.append(rr)
        cols_list.append(rr + k)
        vals_list.append(rng.uniform(0.5, 2.0, rr.shape[0]).astype(dtype))
    if not rows_list:
        return stencil_matrix(n, (0,), (1.0,), dtype)
    return CSRMatrix.from_triplets(
        np.concatenate(rows_list),
        np.concatenate(cols_list),
        np.concatenate(vals_list),
        (n, n),
    )


def fem_like_matrix(
    n: int,
    block_band: int = 12,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A symmetric narrow-band matrix with dense clusters near the diagonal,
    mimicking reordered finite-element stiffness matrices (pcrystk02-like:
    many true diagonals, high ER_DIA, aver_RD in the tens)."""
    rng = make_rng(seed)
    offsets: Sequence[int] = range(-block_band, block_band + 1)
    values = [1.0 + rng.random() for _ in offsets]
    matrix = stencil_matrix(n, tuple(offsets), tuple(values), dtype)
    return matrix


def perturbed_band_matrix(
    n: int,
    n_diags: int,
    noise_nnz: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A banded core plus ``noise_nnz`` uniformly scattered entries.

    The scatter creates many one-element ("false") diagonals, sweeping
    NTdiags_ratio downward while the band keeps ER_ELL moderate — these are
    the boundary cases where the paper's simple threshold rules fail and the
    learned model earns its keep.
    """
    rng = make_rng(seed)
    band = banded_matrix(n, n_diags, seed=rng, dtype=dtype)
    rows = rng.integers(0, n, noise_nnz).astype(INDEX_DTYPE)
    cols = rng.integers(0, n, noise_nnz).astype(INDEX_DTYPE)
    vals = rng.uniform(0.5, 2.0, noise_nnz).astype(dtype)
    all_rows = np.concatenate(
        [np.repeat(np.arange(n, dtype=INDEX_DTYPE), band.row_degrees()), rows]
    )
    all_cols = np.concatenate([band.indices, cols])
    all_vals = np.concatenate([band.data, vals])
    return CSRMatrix.from_triplets(all_rows, all_cols, all_vals, (n, n))
