"""Graph adjacency matrix generators.

Stand-ins for the UF collection's graph, circuit and web matrices: power-law
(scale-free) degree distributions for the COO-affine cases, near-uniform
low-degree meshes (road networks, combinatorial incidence matrices) for the
ELL-affine cases.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.rng import SeedLike, make_rng


def power_law_graph(
    n: int,
    exponent: float = 2.2,
    max_degree: int = 0,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Adjacency matrix whose row degrees follow ``P(k) ~ k^-exponent``.

    Built with a configuration-model-style sampler: degrees are drawn from
    the discrete power law, then each row's neighbours are sampled with a
    preferential bias so column access is also skewed (hub columns), as in
    real web/social graphs.
    """
    rng = make_rng(seed)
    max_degree = max_degree or max(16, n // 20)
    ks = np.arange(1, max_degree + 1, dtype=np.float64)
    probs = ks ** -float(exponent)
    probs /= probs.sum()
    degrees = rng.choice(
        np.arange(1, max_degree + 1), size=n, p=probs
    ).astype(INDEX_DTYPE)

    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    # Preferential column choice: square a uniform draw to bias toward
    # low-numbered "hub" vertices.
    cols = (rng.random(rows.shape[0]) ** 2 * n).astype(INDEX_DTYPE)
    cols = np.minimum(cols, n - 1)
    vals = np.ones(rows.shape[0], dtype=dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))


def road_network(
    n: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A planar-ish mesh with degrees concentrated on {1, 2, 3, 4} —
    roadNet-CA / europe_osm style.  Low average degree with *bounded* skew:
    power-law enough for COO, nothing like a hub-dominated web graph."""
    rng = make_rng(seed)
    degrees = rng.choice(
        [1, 2, 3, 4, 5], size=n, p=[0.30, 0.34, 0.22, 0.10, 0.04]
    ).astype(INDEX_DTYPE)
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    # Local connectivity: neighbours within a window around the row.
    span = max(8, n // 100)
    jitter = rng.integers(-span, span + 1, rows.shape[0])
    cols = np.clip(rows + jitter, 0, n - 1).astype(INDEX_DTYPE)
    vals = np.ones(rows.shape[0], dtype=dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))


def uniform_bipartite(
    n_rows: int,
    n_cols: int,
    row_degree: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Incidence-style matrix with *exactly* ``row_degree`` entries per row
    (ch7-9-b3 / shar_te2-b2 style) — var_RD = 0, the ELL sweet spot."""
    rng = make_rng(seed)
    row_degree = min(row_degree, n_cols)
    # Strided column pattern: start + j*step (mod n_cols) gives exactly
    # ``row_degree`` distinct columns per row without per-row sampling.
    starts = rng.integers(0, n_cols, n_rows).astype(INDEX_DTYPE)
    max_step = max(2, n_cols // max(row_degree, 1))
    steps = rng.integers(1, max_step, n_rows).astype(INDEX_DTYPE)
    j = np.arange(row_degree, dtype=INDEX_DTYPE)
    cols = (starts[:, None] + steps[:, None] * j[None, :]) % n_cols
    rows = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), row_degree)
    vals = np.ones(rows.shape[0], dtype=dtype)
    return CSRMatrix.from_triplets(
        rows, cols.reshape(-1), vals, (n_rows, n_cols)
    )


def small_world_graph(
    n: int,
    base_degree: int = 4,
    rewire_fraction: float = 0.2,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Watts-Strogatz-style ring lattice with rewired long-range edges.

    Mild degree variance plus a few long-range columns: sits between the
    ELL and COO regions — useful training diversity near the boundary.
    """
    rng = make_rng(seed)
    half = max(1, base_degree // 2)
    rows_list = []
    cols_list = []
    for k in range(1, half + 1):
        rr = np.arange(n, dtype=INDEX_DTYPE)
        rows_list.extend([rr, rr])
        cols_list.extend([(rr + k) % n, (rr - k) % n])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list).astype(INDEX_DTYPE)
    rewire = rng.random(rows.shape[0]) < rewire_fraction
    cols[rewire] = rng.integers(0, n, int(rewire.sum()))
    vals = np.ones(rows.shape[0], dtype=dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))


def circuit_matrix(
    n: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Circuit-simulation style: a sparse diagonal spine plus a skewed tail
    of couplings (a few dense rows for supply nets).  Circuit matrices split
    CSR/COO in Table 1; this generator straddles that boundary."""
    rng = make_rng(seed)
    spine_rows = np.arange(n, dtype=INDEX_DTYPE)
    tail_degrees = rng.geometric(0.5, size=n).astype(INDEX_DTYPE)
    n_hubs = max(1, n // 200)
    hub_ids = rng.choice(n, size=n_hubs, replace=False)
    tail_degrees[hub_ids] += rng.integers(20, max(30, n // 20), n_hubs)
    tail_rows = np.repeat(spine_rows, tail_degrees)
    tail_cols = rng.integers(0, n, tail_rows.shape[0]).astype(INDEX_DTYPE)
    rows = np.concatenate([spine_rows, tail_rows])
    cols = np.concatenate([spine_rows, tail_cols])
    vals = rng.uniform(0.5, 1.5, rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))
