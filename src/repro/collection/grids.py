"""Stencil (grid) matrix generators.

These produce the discretized Laplacian operators the paper's AMG experiment
uses as inputs (7-point and 9-point, Section 7.4) plus the 5-point stencil,
all with perfectly "true" diagonals — the canonical DIA-affine matrices.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE


def stencil_matrix(
    n_rows: int,
    offsets: Sequence[int],
    values: Sequence[float],
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """A matrix with constant value ``values[i]`` on diagonal ``offsets[i]``.

    The workhorse for every banded generator: builds the CSR triplets for
    each diagonal vectorially.
    """
    if len(offsets) != len(values):
        raise ValueError("offsets and values must have equal length")
    rows_list = []
    cols_list = []
    vals_list = []
    for offset, value in zip(offsets, values):
        k = int(offset)
        start = max(0, -k)
        end = min(n_rows, n_rows - k)
        if end <= start:
            continue
        rr = np.arange(start, end, dtype=INDEX_DTYPE)
        rows_list.append(rr)
        cols_list.append(rr + k)
        vals_list.append(np.full(rr.shape[0], value, dtype=dtype))
    rows = np.concatenate(rows_list) if rows_list else np.zeros(0, INDEX_DTYPE)
    cols = np.concatenate(cols_list) if cols_list else np.zeros(0, INDEX_DTYPE)
    vals = (
        np.concatenate(vals_list)
        if vals_list
        else np.zeros(0, dtype=dtype)
    )
    return CSRMatrix.from_triplets(rows, cols, vals, (n_rows, n_rows))


def laplacian_1d(n: int, dtype: np.dtype = np.float64) -> CSRMatrix:
    """Tridiagonal 1-D Laplacian: [-1, 2, -1]."""
    return stencil_matrix(n, (-1, 0, 1), (-1.0, 2.0, -1.0), dtype)


def laplacian_5pt(nx: int, ny: int = 0, dtype: np.dtype = np.float64) -> CSRMatrix:
    """5-point 2-D Laplacian on an ``nx x ny`` grid (ny defaults to nx)."""
    ny = ny or nx
    n = nx * ny
    matrix = stencil_matrix(
        n, (-nx, -1, 0, 1, nx), (-1.0, -1.0, 4.0, -1.0, -1.0), dtype
    )
    return _mask_grid_wrap(matrix, nx, ny, dtype)


def laplacian_9pt(nx: int, ny: int = 0, dtype: np.dtype = np.float64) -> CSRMatrix:
    """9-point 2-D Laplacian (the paper's rugeL 9pt input)."""
    ny = ny or nx
    n = nx * ny
    offsets = (-nx - 1, -nx, -nx + 1, -1, 0, 1, nx - 1, nx, nx + 1)
    values = (-1.0, -1.0, -1.0, -1.0, 8.0, -1.0, -1.0, -1.0, -1.0)
    matrix = stencil_matrix(n, offsets, values, dtype)
    return _mask_grid_wrap(matrix, nx, ny, dtype)


def laplacian_7pt(
    nx: int, ny: int = 0, nz: int = 0, dtype: np.dtype = np.float64
) -> CSRMatrix:
    """7-point 3-D Laplacian (the paper's cljp 7pt input)."""
    ny = ny or nx
    nz = nz or nx
    n = nx * ny * nz
    plane = nx * ny
    offsets = (-plane, -nx, -1, 0, 1, nx, plane)
    values = (-1.0, -1.0, -1.0, 6.0, -1.0, -1.0, -1.0)
    matrix = stencil_matrix(n, offsets, values, dtype)
    return _mask_grid_wrap_3d(matrix, nx, ny, nz, dtype)


def _mask_grid_wrap(
    matrix: CSRMatrix, nx: int, ny: int, dtype: np.dtype
) -> CSRMatrix:
    """Remove the spurious couplings where ±1 offsets wrap grid rows.

    A pure diagonal construction couples node ``(i, nx-1)`` to
    ``(i+1, 0)``; physical grids do not.  Rebuilding through triplets with
    those entries masked keeps the operator a true grid Laplacian (and keeps
    AMG convergence honest).
    """
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    cols = matrix.indices
    keep = np.abs((cols % nx) - (rows % nx)) <= 1
    return CSRMatrix.from_triplets(
        rows[keep], cols[keep], matrix.data[keep], matrix.shape
    )


def _mask_grid_wrap_3d(
    matrix: CSRMatrix, nx: int, ny: int, nz: int, dtype: np.dtype
) -> CSRMatrix:
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    cols = matrix.indices
    rx, ry = rows % nx, (rows // nx) % ny
    cx, cy = cols % nx, (cols // nx) % ny
    keep = (np.abs(cx - rx) <= 1) & (np.abs(cy - ry) <= 1)
    return CSRMatrix.from_triplets(
        rows[keep], cols[keep], matrix.data[keep], matrix.shape
    )


def grid_shape_for_rows(target_rows: int, dims: int) -> Tuple[int, ...]:
    """Grid edge lengths whose product is close to ``target_rows``."""
    edge = max(2, round(target_rows ** (1.0 / dims)))
    return tuple([edge] * dims)
