"""Unstructured random matrix generators.

Stand-ins for linear programming, optimization, economics and statistics
matrices — the CSR heartland of Table 1: no exploitable diagonal or
row-regular structure, moderate degrees, bounded skew.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.rng import SeedLike, make_rng


def uniform_random(
    n_rows: int,
    n_cols: int,
    nnz_per_row: float,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Poisson row degrees around ``nnz_per_row``, uniform columns."""
    rng = make_rng(seed)
    degrees = rng.poisson(nnz_per_row, n_rows).astype(INDEX_DTYPE)
    degrees = np.minimum(degrees, n_cols)
    rows = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), degrees)
    cols = rng.integers(0, n_cols, rows.shape[0]).astype(INDEX_DTYPE)
    vals = rng.standard_normal(rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n_rows, n_cols))


def lp_constraint_matrix(
    n_rows: int,
    n_cols: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """LP constraint style: short rows (2-12 entries) hitting column
    clusters; mild skew from a handful of dense coupling constraints."""
    rng = make_rng(seed)
    degrees = rng.integers(2, 13, n_rows).astype(INDEX_DTYPE)
    n_dense = max(1, n_rows // 150)
    dense_rows = rng.choice(n_rows, n_dense, replace=False)
    degrees[dense_rows] = rng.integers(
        n_cols // 10, max(n_cols // 4, n_cols // 10 + 1), n_dense
    )
    degrees = np.minimum(degrees, n_cols)
    rows = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), degrees)
    # Column clusters: rows reference a contiguous-ish variable block.
    centers = rng.integers(0, n_cols, n_rows)
    spread = max(4, n_cols // 20)
    jitter = rng.integers(-spread, spread + 1, rows.shape[0])
    cols = np.clip(np.repeat(centers, degrees) + jitter, 0, n_cols - 1)
    vals = rng.uniform(-1.0, 1.0, rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(
        rows, cols.astype(INDEX_DTYPE), vals, (n_rows, n_cols)
    )


def economics_matrix(
    n: int,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Input-output style: a dense diagonal plus blocky sector coupling.

    Economics matrices are ~95% CSR in Table 1 — enough irregularity to
    defeat DIA/ELL, not enough skew to justify COO.
    """
    rng = make_rng(seed)
    n_sectors = max(2, n // 250)
    sector_of = rng.integers(0, n_sectors, n)
    degrees = rng.integers(3, 20, n).astype(INDEX_DTYPE)
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    # Half the references stay inside the row's sector.
    same_sector = rng.random(rows.shape[0]) < 0.5
    cols = rng.integers(0, n, rows.shape[0]).astype(INDEX_DTYPE)
    sector_peers = np.flatnonzero(sector_of == sector_of[0])
    # Cheap in-sector remap: modulo into the row's sector id band.
    band = max(1, n // n_sectors)
    cols[same_sector] = (
        sector_of[rows[same_sector]] * band + cols[same_sector] % band
    )
    cols = np.minimum(cols, n - 1)
    diag = np.arange(n, dtype=INDEX_DTYPE)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    vals = rng.uniform(0.1, 1.0, rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))
