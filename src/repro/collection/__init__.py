"""Synthetic matrix collection — the UF-collection substitute (DESIGN.md)."""

from repro.collection.collection import (
    MatrixSpec,
    collection_size,
    generate_collection,
    representatives,
)
from repro.collection.domains import (
    DOMAIN_PROFILES,
    TOTAL_COLLECTION_SIZE,
    DomainProfile,
    domain,
)

__all__ = [
    "DOMAIN_PROFILES",
    "DomainProfile",
    "MatrixSpec",
    "TOTAL_COLLECTION_SIZE",
    "collection_size",
    "domain",
    "generate_collection",
    "representatives",
]
