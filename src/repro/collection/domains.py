"""Application-domain profiles reproducing Table 1's collection make-up.

Each profile names one of the paper's 23 application areas, carries the
area's matrix count in the UF collection (Table 1, last column), and mixes
the synthetic generators so the area's format-affinity distribution comes
out qualitatively right (graph areas COO-heavy, quantum chemistry
DIA-heavy, economics almost pure CSR, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.collection import banded, blocks, graphs, grids, random_sparse
from repro.formats.csr import CSRMatrix
from repro.util.rng import make_rng

GeneratorFn = Callable[[np.random.Generator, float], CSRMatrix]


@dataclass(frozen=True)
class DomainProfile:
    """One application area: its Table 1 count and its generator mix."""

    name: str
    count: int
    #: (weight, generator) pairs; weights need not sum to 1.
    recipes: Tuple[Tuple[float, GeneratorFn], ...]

    def sample(self, rng: np.random.Generator, size_scale: float) -> CSRMatrix:
        """Draw one matrix from this domain's mix."""
        weights = np.array([w for w, _ in self.recipes], dtype=np.float64)
        weights /= weights.sum()
        idx = int(rng.choice(len(self.recipes), p=weights))
        return self.recipes[idx][1](rng, size_scale)


def _size(rng: np.random.Generator, scale: float, lo: int, hi: int) -> int:
    """A log-uniform size draw in [lo, hi], scaled."""
    value = np.exp(rng.uniform(np.log(lo), np.log(hi))) * scale
    return max(50, int(value))


# ---------------------------------------------------------------------------
# Generator adaptors (rng, size_scale) -> CSRMatrix
# ---------------------------------------------------------------------------

def _stencil(dims: int):
    def gen(rng: np.random.Generator, scale: float) -> CSRMatrix:
        rows = _size(rng, scale, 900, 9000)
        shape = grids.grid_shape_for_rows(rows, dims)
        if dims == 1:
            return grids.laplacian_1d(shape[0])
        if dims == 2:
            if rng.random() < 0.5:
                return grids.laplacian_5pt(*shape)
            return grids.laplacian_9pt(*shape)
        return grids.laplacian_7pt(*shape)

    return gen


def _banded(min_diags: int, max_diags: int, occupancy: float = 1.0):
    def gen(rng: np.random.Generator, scale: float) -> CSRMatrix:
        n = _size(rng, scale, 800, 8000)
        n_diags = int(rng.integers(min_diags, max_diags + 1))
        occ = occupancy if occupancy < 1.0 else float(rng.uniform(0.8, 1.0))
        return banded.banded_matrix(n, n_diags, seed=rng, occupancy=occ)

    return gen


def _fem(rng: np.random.Generator, scale: float) -> CSRMatrix:
    n = _size(rng, scale, 800, 6000)
    return banded.fem_like_matrix(n, int(rng.integers(6, 25)), seed=rng)


def _perturbed_band(rng: np.random.Generator, scale: float) -> CSRMatrix:
    n = _size(rng, scale, 800, 6000)
    n_diags = int(rng.integers(3, 15))
    noise = int(n * rng.uniform(0.5, 3.0))
    return banded.perturbed_band_matrix(n, n_diags, noise, seed=rng)


def _power_law(lo: float = 1.8, hi: float = 2.8):
    def gen(rng: np.random.Generator, scale: float) -> CSRMatrix:
        n = _size(rng, scale, 1500, 15000)
        return graphs.power_law_graph(
            n, exponent=float(rng.uniform(lo, hi)), seed=rng
        )

    return gen


def _road(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return graphs.road_network(_size(rng, scale, 2000, 20000), seed=rng)


def _bipartite(rng: np.random.Generator, scale: float) -> CSRMatrix:
    n_rows = _size(rng, scale, 1500, 12000)
    n_cols = max(64, int(n_rows * rng.uniform(0.15, 1.0)))
    return graphs.uniform_bipartite(
        n_rows, n_cols, int(rng.integers(2, 7)), seed=rng
    )


def _small_world(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return graphs.small_world_graph(
        _size(rng, scale, 1500, 12000),
        base_degree=int(rng.integers(4, 10)),
        rewire_fraction=float(rng.uniform(0.05, 0.4)),
        seed=rng,
    )


def _circuit(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return graphs.circuit_matrix(_size(rng, scale, 1200, 10000), seed=rng)


def _uniform_random(lo: float, hi: float):
    def gen(rng: np.random.Generator, scale: float) -> CSRMatrix:
        n = _size(rng, scale, 800, 8000)
        return random_sparse.uniform_random(
            n, n, float(rng.uniform(lo, hi)), seed=rng
        )

    return gen


def _lp(rng: np.random.Generator, scale: float) -> CSRMatrix:
    n_rows = _size(rng, scale, 1000, 9000)
    n_cols = max(128, int(n_rows * rng.uniform(0.4, 1.6)))
    return random_sparse.lp_constraint_matrix(n_rows, n_cols, seed=rng)


def _economics(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return random_sparse.economics_matrix(
        _size(rng, scale, 800, 6000), seed=rng
    )


def _block(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return blocks.block_structured(
        _size(rng, scale, 1000, 6000),
        block_size=int(rng.integers(3, 9)),
        blocks_per_row=int(rng.integers(4, 14)),
        seed=rng,
    )


def _wide(rng: np.random.Generator, scale: float) -> CSRMatrix:
    return blocks.wide_row_matrix(
        _size(rng, scale, 800, 4000),
        aver_degree=int(rng.integers(30, 150)),
        seed=rng,
    )


# ---------------------------------------------------------------------------
# The 23 application areas of Table 1.
# ---------------------------------------------------------------------------

DOMAIN_PROFILES: Sequence[DomainProfile] = (
    DomainProfile("graph", 334, (
        (0.30, _power_law()),
        (0.14, _road),
        (0.06, _bipartite),
        (0.08, _small_world),
        (0.42, _uniform_random(3, 15)),
    )),
    DomainProfile("linear programming", 327, (
        (0.72, _lp),
        (0.14, _uniform_random(3, 20)),
        (0.09, _power_law(2.0, 3.0)),
        (0.05, _bipartite),
    )),
    DomainProfile("structural", 277, (
        (0.45, _block),
        (0.25, _wide),
        (0.14, _fem),
        (0.10, _perturbed_band),
        (0.06, _power_law(2.0, 2.6)),
    )),
    DomainProfile("combinatorial", 266, (
        (0.26, _bipartite),
        (0.38, _uniform_random(3, 12)),
        (0.16, _power_law()),
        (0.13, _small_world),
        (0.07, _banded(2, 8)),
    )),
    DomainProfile("circuit simulation", 260, (
        (0.38, _circuit),
        (0.24, _power_law(1.9, 2.6)),
        (0.38, _uniform_random(3, 10)),
    )),
    DomainProfile("computational fluid dynamics", 168, (
        (0.48, _wide),
        (0.17, _stencil(3)),
        (0.11, _fem),
        (0.19, _block),
        (0.05, _power_law(2.0, 2.6)),
    )),
    DomainProfile("optimization", 138, (
        (0.62, _lp),
        (0.20, _uniform_random(3, 25)),
        (0.10, _power_law(2.0, 3.0)),
        (0.08, _banded(3, 10)),
    )),
    DomainProfile("2D 3D", 121, (
        (0.26, _stencil(2)),
        (0.12, _stencil(3)),
        (0.35, _uniform_random(4, 10)),
        (0.15, _bipartite),
        (0.12, _power_law()),
    )),
    DomainProfile("economic", 71, (
        (0.85, _economics),
        (0.15, _uniform_random(4, 20)),
    )),
    DomainProfile("chemical process simulation", 64, (
        (0.60, _uniform_random(3, 12)),
        (0.22, _circuit),
        (0.18, _perturbed_band),
    )),
    DomainProfile("power network", 61, (
        (0.25, _circuit),
        (0.12, _power_law(1.9, 2.8)),
        (0.63, _uniform_random(3, 8)),
    )),
    DomainProfile("model reduction", 60, (
        (0.50, _uniform_random(4, 30)),
        (0.30, _power_law(1.8, 2.6)),
        (0.12, _banded(3, 12)),
        (0.08, _bipartite),
    )),
    DomainProfile("theoretical quantum chemistry", 47, (
        (0.55, _banded(5, 30)),
        (0.25, _fem),
        (0.20, _wide),
    )),
    DomainProfile("electromagnetics", 33, (
        (0.40, _banded(5, 25)),
        (0.35, _uniform_random(5, 30)),
        (0.15, _fem),
        (0.10, _bipartite),
    )),
    DomainProfile("semiconductor device", 33, (
        (0.70, _uniform_random(4, 15)),
        (0.20, _stencil(2)),
        (0.10, _perturbed_band),
    )),
    DomainProfile("thermal", 29, (
        (0.62, _uniform_random(4, 12)),
        (0.13, _stencil(2)),
        (0.15, _bipartite),
        (0.10, _power_law()),
    )),
    DomainProfile("materials", 26, (
        (0.38, _banded(5, 30)),
        (0.44, _uniform_random(5, 25)),
        (0.18, _power_law(2.0, 2.6)),
    )),
    DomainProfile("least squares", 21, (
        (0.48, _uniform_random(3, 15)),
        (0.42, _bipartite),
        (0.10, _power_law()),
    )),
    DomainProfile("computer graphics vision", 12, (
        (0.65, _uniform_random(4, 15)),
        (0.20, _bipartite),
        (0.15, _small_world),
    )),
    DomainProfile("statistical mathematical", 10, (
        (0.35, _uniform_random(3, 15)),
        (0.30, _bipartite),
        (0.25, _banded(3, 12)),
        (0.10, _power_law()),
    )),
    DomainProfile("counter-example", 8, (
        (0.45, _uniform_random(2, 8)),
        (0.35, _power_law()),
        (0.20, _banded(2, 8, occupancy=0.5)),
    )),
    DomainProfile("acoustics", 7, (
        (0.60, _uniform_random(5, 20)),
        (0.40, _banded(5, 20)),
    )),
    DomainProfile("robotics", 3, (
        (1.00, _uniform_random(3, 12)),
    )),
)

# Table 1's per-area rows sum to 2376 although its caption says 2386
# matrices; we reproduce the per-area numbers as printed.
TOTAL_COLLECTION_SIZE = sum(p.count for p in DOMAIN_PROFILES)
assert TOTAL_COLLECTION_SIZE == 2376, TOTAL_COLLECTION_SIZE


def domain(name: str) -> DomainProfile:
    """Look up one application-area profile by name."""
    for profile in DOMAIN_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown application domain: {name!r}")
