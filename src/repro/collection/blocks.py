"""Block-structured matrix generators.

Stand-ins for structural-mechanics matrices assembled from small dense
element blocks (pkustk14, crankseg_2 style): heavy rows, high average
degree, dense local blocks — CSR (or BCSR) territory.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE
from repro.util.rng import SeedLike, make_rng


def block_structured(
    n: int,
    block_size: int = 6,
    blocks_per_row: int = 8,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Dense ``block_size``-square blocks scattered on a block grid."""
    rng = make_rng(seed)
    n_block_rows = max(1, n // block_size)
    n = n_block_rows * block_size
    entries_rows = []
    entries_cols = []
    local_r, local_c = np.meshgrid(
        np.arange(block_size), np.arange(block_size), indexing="ij"
    )
    local_r = local_r.reshape(-1)
    local_c = local_c.reshape(-1)
    for brow in range(n_block_rows):
        n_blocks = 1 + rng.poisson(blocks_per_row - 1)
        # Blocks cluster near the diagonal (element connectivity is local).
        bcols = np.clip(
            brow + rng.integers(-3 * blocks_per_row, 3 * blocks_per_row + 1,
                                n_blocks),
            0,
            n_block_rows - 1,
        )
        for bcol in np.unique(bcols):
            entries_rows.append(brow * block_size + local_r)
            entries_cols.append(bcol * block_size + local_c)
    rows = np.concatenate(entries_rows).astype(INDEX_DTYPE)
    cols = np.concatenate(entries_cols).astype(INDEX_DTYPE)
    vals = rng.standard_normal(rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(rows, cols, vals, (n, n))


def wide_row_matrix(
    n: int,
    aver_degree: int = 90,
    skew: float = 4.0,
    seed: SeedLike = None,
    dtype: np.dtype = np.float64,
) -> CSRMatrix:
    """Very heavy rows with lognormal spread (crankseg_2-like, ~200/row).

    Heavy enough that padding kills ELL and the diagonal census kills DIA:
    these train the "CSR despite everything" region where the paper's model
    falls back to execute-and-measure.
    """
    rng = make_rng(seed)
    degrees = np.minimum(
        rng.lognormal(np.log(aver_degree), np.log(skew) / 2, n).astype(
            INDEX_DTYPE
        )
        + 1,
        n,
    )
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    centers = rng.integers(0, n, n)
    spread = max(16, n // 10)
    cols = np.clip(
        np.repeat(centers, degrees)
        + rng.integers(-spread, spread + 1, rows.shape[0]),
        0,
        n - 1,
    )
    vals = rng.standard_normal(rows.shape[0]).astype(dtype)
    return CSRMatrix.from_triplets(
        rows, cols.astype(INDEX_DTYPE), vals, (n, n)
    )
