"""The synthetic matrix collection and the 16 representative matrices.

``generate_collection`` streams (spec, matrix) pairs covering the paper's
23 application areas with Table 1's area proportions; ``representatives``
rebuilds synthetic stand-ins for the 16 matrices of Figure 8.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.collection import banded, blocks, graphs, grids, random_sparse
from repro.collection.domains import DOMAIN_PROFILES, TOTAL_COLLECTION_SIZE
from repro.formats.csr import CSRMatrix
from repro.util.rng import SeedLike, derive_rng, make_rng


@dataclass(frozen=True)
class MatrixSpec:
    """Identity of one collection matrix."""

    index: int
    name: str
    domain: str


def generate_collection(
    seed: SeedLike = 2013,
    scale: float = 1.0,
    size_scale: float = 1.0,
    max_matrices: Optional[int] = None,
) -> Iterator[Tuple[MatrixSpec, CSRMatrix]]:
    """Stream the synthetic UF-collection substitute.

    ``scale`` shrinks the *number* of matrices proportionally per domain
    (scale=1.0 reproduces all 2386); ``size_scale`` shrinks matrix sizes
    for fast test runs.  Streaming keeps memory flat — the full collection
    is never resident at once, just like the paper's training pipeline.
    """
    rng = make_rng(seed)
    index = 0
    for profile in DOMAIN_PROFILES:
        count = max(1, round(profile.count * scale))
        # zlib.crc32, NOT hash(): string hashing is randomized per process
        # and would make the "same" collection differ run to run.
        domain_salt = zlib.crc32(profile.name.encode()) & 0xFFFF
        domain_rng = derive_rng(rng, domain_salt)
        for i in range(count):
            if max_matrices is not None and index >= max_matrices:
                return
            matrix = profile.sample(domain_rng, size_scale)
            spec = MatrixSpec(
                index=index,
                name=f"{profile.name.replace(' ', '_')}_{i:04d}",
                domain=profile.name,
            )
            yield spec, matrix
            index += 1


def collection_size(scale: float = 1.0) -> int:
    """Number of matrices ``generate_collection`` will yield for ``scale``."""
    return sum(max(1, round(p.count * scale)) for p in DOMAIN_PROFILES)


# ---------------------------------------------------------------------------
# The 16 representative matrices of Figure 8.
# ---------------------------------------------------------------------------

def representatives(
    seed: SeedLike = 8, size_scale: float = 1.0
) -> List[Tuple[MatrixSpec, CSRMatrix]]:
    """Synthetic stand-ins for the paper's 16 representative matrices.

    Names, application areas and the DIA/ELL/CSR/COO affinity grouping
    follow Figure 8 (No.1-4 DIA, No.5-8 ELL, No.9-12 CSR, No.13-16 COO).
    Dimensions are scaled down (``size_scale=1.0`` targets ~10-50k rows)
    so the whole suite regenerates in seconds; the *feature vectors* sit in
    the same regions as the originals, which is what drives every figure.
    """
    rng = make_rng(seed)
    s = size_scale

    def sz(value: int) -> int:
        return max(100, int(value * s))

    builders: List[Tuple[str, str, Callable[[], CSRMatrix]]] = [
        # -- DIA affine (Figure 8 No.1-4) --
        ("pcrystk02", "duplicate materials problem",
         lambda: banded.fem_like_matrix(sz(14_000), 17, seed=derive_rng(rng, 1))),
        ("denormal", "counter-example problem",
         lambda: banded.banded_matrix(sz(89_000), 7, seed=derive_rng(rng, 2))),
        ("cryg10000", "materials problem",
         lambda: banded.banded_matrix(sz(10_000), 5, seed=derive_rng(rng, 3))),
        ("apache1", "structural problem",
         lambda: grids.laplacian_5pt(*grids.grid_shape_for_rows(sz(81_000), 2))),
        # -- ELL affine (No.5-8) --
        ("bfly", "undirected graph sequence",
         lambda: graphs.uniform_bipartite(
             sz(49_000), sz(49_000), 2, seed=derive_rng(rng, 5))),
        ("whitaker3_dual", "2D/3D problem",
         lambda: graphs.uniform_bipartite(
             sz(19_000), sz(19_000), 3, seed=derive_rng(rng, 6))),
        ("ch7-9-b3", "combinatorial problem",
         lambda: graphs.uniform_bipartite(
             sz(106_000), sz(18_000), 4, seed=derive_rng(rng, 7))),
        ("shar_te2-b2", "combinatorial problem",
         lambda: graphs.uniform_bipartite(
             sz(200_000), sz(17_000), 3, seed=derive_rng(rng, 8))),
        # -- CSR affine (No.9-12): sized to exceed the 12 MiB LLC even at
        # size_scale=0.1, as the paper's multi-million-nnz originals do --
        ("pkustk14", "structural problem",
         lambda: blocks.block_structured(
             sz(152_000), block_size=6, blocks_per_row=16,
             seed=derive_rng(rng, 9))),
        ("crankseg_2", "structural problem",
         lambda: blocks.wide_row_matrix(
             sz(64_000), aver_degree=200, seed=derive_rng(rng, 10))),
        ("Ga3As3H12", "theoretical/quantum chemistry",
         lambda: blocks.wide_row_matrix(
             sz(122_000), aver_degree=97, seed=derive_rng(rng, 11))),
        ("HV15R", "computational fluid dynamics",
         lambda: blocks.wide_row_matrix(
             sz(400_000), aver_degree=140, seed=derive_rng(rng, 12))),
        # -- COO affine (No.13-16) --
        ("europe_osm", "undirected graph",
         lambda: graphs.road_network(sz(400_000), seed=derive_rng(rng, 13))),
        ("D6-6", "combinatorial problem",
         lambda: graphs.power_law_graph(
             sz(121_000), exponent=2.0, seed=derive_rng(rng, 14))),
        ("dictionary28", "undirected graph",
         lambda: graphs.power_law_graph(
             sz(53_000), exponent=2.2, seed=derive_rng(rng, 15))),
        ("roadNet-CA", "undirected graph",
         lambda: graphs.power_law_graph(
             sz(200_000), exponent=2.4, seed=derive_rng(rng, 16))),
    ]

    result = []
    for index, (name, domain_name, build) in enumerate(builders, start=1):
        result.append((MatrixSpec(index, name, domain_name), build()))
    return result
