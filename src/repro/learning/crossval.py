"""Cross-validation utilities for the learning pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.learning.dataset import TrainingDataset
from repro.learning.model import LearningModel, train_model
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold and aggregate accuracy of one configuration."""

    fold_accuracies: tuple

    @property
    def mean_accuracy(self) -> float:
        return sum(self.fold_accuracies) / len(self.fold_accuracies)

    @property
    def min_accuracy(self) -> float:
        return min(self.fold_accuracies)

    @property
    def max_accuracy(self) -> float:
        return max(self.fold_accuracies)


def cross_validate(
    dataset: TrainingDataset,
    k: int = 5,
    seed: SeedLike = 0,
    trainer: Callable[[TrainingDataset], LearningModel] = train_model,
) -> CrossValResult:
    """k-fold cross-validation of the full train pipeline."""
    accuracies: List[float] = []
    for train_split, test_split in dataset.folds(k, seed=seed):
        model = trainer(train_split)
        accuracies.append(model.accuracy(test_split))
    return CrossValResult(fold_accuracies=tuple(accuracies))
