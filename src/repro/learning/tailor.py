"""Rule tailoring and format grouping (Section 6).

Two runtime optimizations transform the raw ruleset:

* **Tailoring** — rules are already ordered by estimated contribution;
  keep the shortest prefix whose training accuracy is within a tolerance
  (the paper accepts a 1% gap, e.g. rules No.1-15 of 40 on Intel reach
  9.6% error vs the full ruleset's 9.0%).
* **Grouping** — the tailored rules are assigned to per-format groups
  evaluated in the fixed order DIA, ELL, CSR, COO (high-payoff and cheap
  first), each group carrying a *format confidence*: the largest rule
  confidence inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.learning.dataset import TrainingDataset
from repro.learning.rules import Rule, RuleSet
from repro.types import FormatName

#: The evaluation order of Section 6: DIA first (highest performance when it
#: fires), ELL second (regular, easy to predict), CSR third (its parameters
#: are already extracted), COO last (needs the expensive power-law step).
GROUP_ORDER: Tuple[FormatName, ...] = (
    FormatName.DIA,
    FormatName.ELL,
    FormatName.CSR,
    FormatName.COO,
)

#: The paper's acceptable accuracy gap between tailored and full rulesets.
DEFAULT_ACCURACY_GAP = 0.01


def tailor_rules(
    ruleset: RuleSet,
    dataset: TrainingDataset,
    accuracy_gap: float = DEFAULT_ACCURACY_GAP,
) -> RuleSet:
    """Keep the shortest contribution-ordered prefix within ``accuracy_gap``
    of the full ruleset's training accuracy."""
    if not ruleset.rules:
        return ruleset
    full_accuracy = ruleset.accuracy(dataset)
    for k in range(1, len(ruleset.rules) + 1):
        prefix = RuleSet(
            rules=ruleset.rules[:k], default_format=ruleset.default_format
        )
        if prefix.accuracy(dataset) >= full_accuracy - accuracy_gap:
            return prefix
    return ruleset


@dataclass
class FormatGroup:
    """All tailored rules predicting one format, in ruleset order."""

    format_name: FormatName
    rules: Tuple[Rule, ...]

    @property
    def format_confidence(self) -> float:
        """The group's reliability: the largest rule confidence inside it."""
        if not self.rules:
            return 0.0
        return max(rule.confidence for rule in self.rules)

    def first_match(self, features) -> Optional[Rule]:
        for rule in self.rules:
            if rule.matches(features):
                return rule
        return None

    def required_attributes(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for rule in self.rules:
            for attr in rule.required_attributes():
                seen.setdefault(attr, None)
        return tuple(seen)


@dataclass
class GroupedRules:
    """The runtime artifact: per-format groups in evaluation order plus the
    default format for no-match inputs."""

    groups: Tuple[FormatGroup, ...]
    default_format: FormatName

    def group(self, fmt: FormatName) -> FormatGroup:
        for g in self.groups:
            if g.format_name is fmt:
                return g
        return FormatGroup(format_name=fmt, rules=())

    def describe(self) -> str:
        lines = []
        for g in self.groups:
            lines.append(
                f"[{g.format_name.value} group] "
                f"confidence={g.format_confidence:.2f}"
            )
            lines.extend(f"  {rule}" for rule in g.rules)
        lines.append(f"[default] {self.default_format.value}")
        return "\n".join(lines)


def group_rules(ruleset: RuleSet) -> GroupedRules:
    """Assign tailored rules to format groups in ``GROUP_ORDER``."""
    buckets: Dict[FormatName, List[Rule]] = {fmt: [] for fmt in GROUP_ORDER}
    for rule in ruleset.rules:
        buckets.setdefault(rule.format_name, []).append(rule)
    groups = tuple(
        FormatGroup(format_name=fmt, rules=tuple(buckets.get(fmt, ())))
        for fmt in GROUP_ORDER
    )
    return GroupedRules(groups=groups, default_format=ruleset.default_format)
