"""AdaBoost.M1 over decision trees — C5.0's boosting option.

The paper uses plain (un-boosted) C5.0; boosting is one of the "add more
features / more meticulous implementations" extension points Section 3
advertises, so it ships as an optional trainer exercised by the ablation
bench.

AdaBoost.M1 with resampling: each round draws a weighted bootstrap of the
training set, fits a tree, and weights the tree by its training error; the
ensemble predicts by weighted vote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import LearningError
from repro.features.parameters import FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.learning.tree import DecisionTree, TreeLearner
from repro.types import FormatName
from repro.util.rng import SeedLike, make_rng


@dataclass
class BoostedModel:
    """A weighted ensemble of decision trees."""

    trees: Tuple[DecisionTree, ...]
    weights: Tuple[float, ...]
    default_format: FormatName

    def predict(self, features: FeatureVector) -> FormatName:
        votes: Dict[FormatName, float] = {}
        for tree, weight in zip(self.trees, self.weights):
            fmt = tree.predict(features)
            votes[fmt] = votes.get(fmt, 0.0) + weight
        if not votes:
            return self.default_format
        return max(votes, key=lambda f: (votes[f], f.value))

    def accuracy(self, dataset: TrainingDataset) -> float:
        if len(dataset) == 0:
            return 1.0
        hits = sum(
            1 for r in dataset if self.predict(r) is r.best_format
        )
        return hits / len(dataset)


def train_boosted(
    dataset: TrainingDataset,
    rounds: int = 10,
    min_leaf: int = 4,
    max_depth: int = 8,
    seed: SeedLike = 0,
) -> BoostedModel:
    """AdaBoost.M1 with weighted resampling."""
    if rounds < 1:
        raise LearningError(f"rounds must be >= 1, got {rounds}")
    n = len(dataset)
    if n == 0:
        raise LearningError("cannot boost on an empty dataset")
    rng = make_rng(seed)
    records = list(dataset.records)
    sample_weights = np.full(n, 1.0 / n)

    trees: List[DecisionTree] = []
    alphas: List[float] = []
    for _ in range(rounds):
        chosen = rng.choice(n, size=n, replace=True, p=sample_weights)
        boot = TrainingDataset(tuple(records[i] for i in chosen))
        tree = TreeLearner(
            min_leaf=min_leaf, max_depth=max_depth, prune=True
        ).fit(boot)

        wrong = np.array(
            [tree.predict(r) is not r.best_format for r in records]
        )
        error = float(sample_weights[wrong].sum())
        if error >= 0.5:
            # Weak learner no better than chance on the reweighted set: stop.
            break
        if error <= 0.0:
            trees.append(tree)
            alphas.append(10.0)  # a perfect tree gets a large finite vote
            break
        beta = error / (1.0 - error)
        alpha = math.log(1.0 / beta)
        trees.append(tree)
        alphas.append(alpha)

        sample_weights[~wrong] *= beta
        sample_weights /= sample_weights.sum()

    if not trees:
        # Degenerate data: fall back to one unweighted tree.
        trees = [TreeLearner(min_leaf=min_leaf, max_depth=max_depth).fit(dataset)]
        alphas = [1.0]
    return BoostedModel(
        trees=tuple(trees),
        weights=tuple(alphas),
        default_format=dataset.majority_class(),
    )
