"""Ruleset extraction (Section 5.1).

The paper chooses C5.0's *ruleset* output over the raw tree: rulesets are
more accurate and "convenient to convert to IF-THEN sentences".  Each rule
here is a conjunction of interval conditions over the Table 2 parameters,
carries the confidence factor the runtime thresholds against, and renders
itself as exactly such an IF-THEN sentence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.features.parameters import PAPER_NAMES, FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.learning.tree import DecisionTree, TreeNode
from repro.types import FormatName


@dataclass(frozen=True)
class Condition:
    """One conjunct: ``attribute <= threshold`` or ``attribute > threshold``."""

    attribute: str
    operator: str  # "<=" or ">"
    threshold: float

    def matches(self, features: FeatureVector) -> bool:
        value = features.value(self.attribute)
        if self.operator == "<=":
            return value <= self.threshold
        return value > self.threshold

    def __str__(self) -> str:
        name = PAPER_NAMES.get(self.attribute, self.attribute)
        return f"{name} {self.operator} {self.threshold:g}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "attr": self.attribute,
            "op": self.operator,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Condition":
        return cls(
            str(payload["attr"]),
            str(payload["op"]),
            float(payload["threshold"]),  # type: ignore[arg-type]
        )


@dataclass
class Rule:
    """IF <conditions> THEN <format>, with training statistics.

    ``confidence`` follows the paper exactly: "the ratio of the number of
    correctly classified matrices to the number of matrices falling in this
    rule".  A broad rule for the general CSR format essentially never stays
    perfectly pure, so its confidence sits just below 1.0 — which is what
    lets a high threshold route exactly those predictions into the
    execute-and-measure fallback (Table 3, rows 9-12).
    """

    conditions: Tuple[Condition, ...]
    format_name: FormatName
    covered: int = 0
    correct: int = 0

    @property
    def confidence(self) -> float:
        if self.covered == 0:
            return 0.0
        return self.correct / self.covered

    @property
    def laplace_confidence(self) -> float:
        """Smoothed variant for reporting: shades tiny rules toward 1/2."""
        return (self.correct + 1) / (self.covered + 2)

    @property
    def contribution(self) -> int:
        """Estimated contribution to training accuracy: correct minus
        incorrect coverage.  Drives the rule (re-)ordering of Section 6."""
        return 2 * self.correct - self.covered

    def matches(self, features: FeatureVector) -> bool:
        return all(c.matches(features) for c in self.conditions)

    def required_attributes(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(c.attribute for c in self.conditions))

    def __str__(self) -> str:
        if not self.conditions:
            body = "TRUE"
        else:
            body = " AND ".join(str(c) for c in self.conditions)
        return (
            f"IF {body} THEN {self.format_name.value} "
            f"[conf={self.confidence:.2f}, n={self.covered}]"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (model files, decision logs)."""
        return {
            "format": self.format_name.value,
            "covered": self.covered,
            "correct": self.correct,
            "conditions": [c.to_dict() for c in self.conditions],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Rule":
        return cls(
            conditions=tuple(
                Condition.from_dict(c)
                for c in payload["conditions"]  # type: ignore[union-attr]
            ),
            format_name=FormatName(payload["format"]),
            covered=int(payload["covered"]),  # type: ignore[arg-type]
            correct=int(payload["correct"]),  # type: ignore[arg-type]
        )


@dataclass
class RuleSet:
    """An ordered ruleset with a default class.

    Prediction is first-match; records matching no rule get the default
    class (the training majority, CSR for every realistic collection).
    """

    rules: Tuple[Rule, ...]
    default_format: FormatName

    def __len__(self) -> int:
        return len(self.rules)

    def predict(self, features: FeatureVector) -> FormatName:
        fmt, _ = self.predict_with_confidence(features)
        return fmt

    def predict_with_confidence(
        self, features: FeatureVector
    ) -> Tuple[FormatName, float]:
        """(format, confidence); default predictions carry confidence 0."""
        for rule in self.rules:
            if rule.matches(features):
                return rule.format_name, rule.confidence
        return self.default_format, 0.0

    def accuracy(self, dataset: TrainingDataset) -> float:
        if len(dataset) == 0:
            return 1.0
        hits = sum(1 for r in dataset if self.predict(r) is r.best_format)
        return hits / len(dataset)

    def error_rate(self, dataset: TrainingDataset) -> float:
        return 1.0 - self.accuracy(dataset)

    def describe(self) -> str:
        lines = [f"No.{i + 1:<3d} {rule}" for i, rule in enumerate(self.rules)]
        lines.append(f"DEFAULT {self.default_format.value}")
        return "\n".join(lines)


def extract_rules(tree: DecisionTree, dataset: TrainingDataset) -> RuleSet:
    """Convert every root-to-leaf path into a rule, simplify, score, order.

    Mirrors C5.0's tree-to-ruleset conversion: redundant conditions on the
    same attribute are merged, each rule is scored on the training set, and
    rules are ordered by estimated contribution (Section 6's "rules reducing
    error rate the most appear first").
    """
    raw_paths: List[Tuple[Tuple[Condition, ...], FormatName]] = []
    _collect_paths(tree.root, (), raw_paths)

    rules = []
    for conditions, fmt in raw_paths:
        simplified = _simplify(conditions)
        rule = Rule(conditions=simplified, format_name=fmt)
        _score(rule, dataset)
        if rule.covered > 0:
            rules.append(rule)

    rules.sort(key=lambda r: (-r.contribution, -r.confidence, len(r.conditions)))
    return RuleSet(
        rules=tuple(rules), default_format=tree.default_class
    )


def _collect_paths(
    node: TreeNode,
    prefix: Tuple[Condition, ...],
    out: List[Tuple[Tuple[Condition, ...], FormatName]],
) -> None:
    if node.is_leaf:
        assert node.prediction is not None
        out.append((prefix, node.prediction))
        return
    assert node.attribute is not None and node.threshold is not None
    assert node.left is not None and node.right is not None
    _collect_paths(
        node.left,
        prefix + (Condition(node.attribute, "<=", node.threshold),),
        out,
    )
    _collect_paths(
        node.right,
        prefix + (Condition(node.attribute, ">", node.threshold),),
        out,
    )


def _simplify(conditions: Sequence[Condition]) -> Tuple[Condition, ...]:
    """Merge conditions on the same attribute into the tightest interval."""
    upper: Dict[str, float] = {}
    lower: Dict[str, float] = {}
    order: List[str] = []
    for cond in conditions:
        if cond.attribute not in order:
            order.append(cond.attribute)
        if cond.operator == "<=":
            current = upper.get(cond.attribute, math.inf)
            upper[cond.attribute] = min(current, cond.threshold)
        else:
            current = lower.get(cond.attribute, -math.inf)
            lower[cond.attribute] = max(current, cond.threshold)
    result: List[Condition] = []
    for attr in order:
        if attr in lower:
            result.append(Condition(attr, ">", lower[attr]))
        if attr in upper:
            result.append(Condition(attr, "<=", upper[attr]))
    return tuple(result)


def _score(rule: Rule, dataset: TrainingDataset) -> None:
    covered = 0
    correct = 0
    for record in dataset:
        if rule.matches(record):
            covered += 1
            if record.best_format is rule.format_name:
                correct += 1
    rule.covered = covered
    rule.correct = correct
