"""A C4.5/C5.0-style decision-tree learner, from scratch.

This is the data-mining core the paper delegates to the C5.0 tool: gain-ratio
splits on continuous attributes, and C4.5's pessimistic-error subtree
replacement pruning.  The tree itself is rarely used directly for prediction
— Section 5.1 prefers the ruleset extracted from it
(:mod:`repro.learning.rules`) — but the tree/ruleset choice is one of the
ablations DESIGN.md calls out, so tree prediction is fully supported.

Missing values: the power-law parameter ``R`` is ``inf`` for non-scale-free
matrices.  Because every rule of interest has the form ``r <= t``, treating
``inf`` as an ordinary (very large) value routes such records down the
"not scale-free" branch, which is exactly the intended semantics — no
fractional-instance machinery is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LearningError
from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.types import FormatName

#: z-value of C4.5's default CF = 0.25 pruning confidence.
PRUNING_Z = 0.6925

#: Floor on split information to keep gain ratios finite.
MIN_SPLIT_INFO = 1e-9


@dataclass
class TreeNode:
    """One node: either a leaf (``prediction`` set) or an internal split
    ``attribute <= threshold`` (left = true branch)."""

    n_records: int
    class_counts: Dict[FormatName, int]
    prediction: Optional[FormatName] = None
    attribute: Optional[str] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None

    @property
    def majority(self) -> FormatName:
        return max(
            self.class_counts, key=lambda c: (self.class_counts[c], c.value)
        )

    @property
    def n_errors(self) -> int:
        """Training records at this node not of the majority class."""
        return self.n_records - self.class_counts[self.majority]

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.n_leaves() + self.right.n_leaves()


@dataclass
class DecisionTree:
    """A trained tree plus its training metadata."""

    root: TreeNode
    attributes: Tuple[str, ...]
    default_class: FormatName

    def predict(self, features: FeatureVector) -> FormatName:
        node = self.root
        while not node.is_leaf:
            assert node.attribute is not None and node.threshold is not None
            value = features.value(node.attribute)
            node = node.left if value <= node.threshold else node.right
            assert node is not None
        assert node.prediction is not None
        return node.prediction

    def accuracy(self, dataset: TrainingDataset) -> float:
        if len(dataset) == 0:
            return 1.0
        hits = sum(
            1 for r in dataset if self.predict(r) is r.best_format
        )
        return hits / len(dataset)


@dataclass
class TreeLearner:
    """Grow-then-prune C4.5 learner.

    ``min_leaf`` mirrors C4.5's minimum-cases parameter; ``max_depth``
    bounds pathological growth on noisy data; ``prune=False`` gives the raw
    tree for the pruning ablation.
    """

    min_leaf: int = 4
    max_depth: int = 12
    prune: bool = True
    attributes: Sequence[str] = FEATURE_NAMES

    def fit(self, dataset: TrainingDataset) -> DecisionTree:
        if len(dataset) == 0:
            raise LearningError("cannot fit a tree on an empty dataset")
        if self.min_leaf < 1:
            raise LearningError(f"min_leaf must be >= 1, got {self.min_leaf}")
        records = list(dataset.records)
        matrix, labels = _to_arrays(records, self.attributes)
        root = self._grow(matrix, labels, depth=0)
        if self.prune:
            _prune(root)
        return DecisionTree(
            root=root,
            attributes=tuple(self.attributes),
            default_class=dataset.majority_class(),
        )

    # ------------------------------------------------------------------
    def _grow(
        self, matrix: np.ndarray, labels: np.ndarray, depth: int
    ) -> TreeNode:
        counts = _count_classes(labels)
        node = TreeNode(n_records=labels.shape[0], class_counts=counts)
        if (
            len(counts) == 1
            or labels.shape[0] < 2 * self.min_leaf
            or depth >= self.max_depth
        ):
            node.prediction = node.majority
            return node

        split = _best_split(matrix, labels, self.attributes, self.min_leaf)
        if split is None:
            node.prediction = node.majority
            return node

        attr_idx, threshold = split
        mask = matrix[:, attr_idx] <= threshold
        node.attribute = self.attributes[attr_idx]
        node.threshold = threshold
        node.left = self._grow(matrix[mask], labels[mask], depth + 1)
        node.right = self._grow(matrix[~mask], labels[~mask], depth + 1)
        return node


# ---------------------------------------------------------------------------
# Split selection
# ---------------------------------------------------------------------------

def _to_arrays(
    records: List[FeatureVector], attributes: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    matrix = np.array(
        [[r.value(a) for a in attributes] for r in records], dtype=np.float64
    )
    class_ids = {fmt: i for i, fmt in enumerate(FormatName)}
    labels = np.array(
        [class_ids[r.best_format] for r in records], dtype=np.int64
    )
    return matrix, labels


def _count_classes(labels: np.ndarray) -> Dict[FormatName, int]:
    formats = list(FormatName)
    values, counts = np.unique(labels, return_counts=True)
    return {formats[int(v)]: int(c) for v, c in zip(values, counts)}


def _entropy(labels: np.ndarray) -> float:
    if labels.shape[0] == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    probs = counts / labels.shape[0]
    return float(-(probs * np.log2(probs)).sum())


def _best_split(
    matrix: np.ndarray,
    labels: np.ndarray,
    attributes: Sequence[str],
    min_leaf: int,
) -> Optional[Tuple[int, float]]:
    """(attribute index, threshold) maximizing gain ratio, or None."""
    n = labels.shape[0]
    base_entropy = _entropy(labels)
    best: Optional[Tuple[int, float]] = None
    best_score = 0.0

    for attr_idx in range(matrix.shape[1]):
        column = matrix[:, attr_idx]
        order = np.argsort(column, kind="stable")
        sorted_vals = column[order]
        sorted_labels = labels[order]

        # Candidate cut positions: wherever the value changes.  Plain
        # comparison (not np.diff) so inf values — missing R — don't warn.
        change = np.nonzero(sorted_vals[1:] > sorted_vals[:-1])[0]
        if change.size == 0:
            continue

        # Incremental class counts left of each cut.
        n_classes = int(labels.max()) + 1
        one_hot = np.zeros((n, n_classes), dtype=np.float64)
        one_hot[np.arange(n), sorted_labels] = 1.0
        prefix = np.cumsum(one_hot, axis=0)

        for cut in change:
            n_left = int(cut) + 1
            n_right = n - n_left
            if n_left < min_leaf or n_right < min_leaf:
                continue
            left_counts = prefix[cut]
            right_counts = prefix[-1] - left_counts
            h_left = _entropy_from_counts(left_counts)
            h_right = _entropy_from_counts(right_counts)
            gain = base_entropy - (
                n_left / n * h_left + n_right / n * h_right
            )
            if gain <= 1e-12:
                continue
            p_left = n_left / n
            split_info = -(
                p_left * math.log2(p_left)
                + (1 - p_left) * math.log2(1 - p_left)
            )
            score = gain / max(split_info, MIN_SPLIT_INFO)
            if score > best_score:
                lo, hi = sorted_vals[cut], sorted_vals[cut + 1]
                threshold = _midpoint(float(lo), float(hi))
                best_score = score
                best = (attr_idx, threshold)
    return best


def _midpoint(lo: float, hi: float) -> float:
    """Midpoint that stays finite when the upper value is inf (missing R)."""
    if math.isinf(hi):
        return lo * 2.0 if lo > 0 else lo + 1.0
    return 0.5 * (lo + hi)


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


# ---------------------------------------------------------------------------
# Pessimistic-error pruning (C4.5 subtree replacement)
# ---------------------------------------------------------------------------

def _pessimistic_errors(n: int, errors: int, z: float = PRUNING_Z) -> float:
    """Upper confidence bound on the error count of a leaf (C4.5's U_CF)."""
    if n == 0:
        return 0.0
    f = errors / n
    numerator = (
        f
        + z * z / (2 * n)
        + z * math.sqrt(f / n - f * f / n + z * z / (4 * n * n))
    )
    return n * numerator / (1 + z * z / n)


def _prune(node: TreeNode) -> float:
    """Post-order subtree replacement; returns estimated subtree errors."""
    if node.is_leaf:
        return _pessimistic_errors(node.n_records, node.n_errors)
    assert node.left is not None and node.right is not None
    subtree_errors = _prune(node.left) + _prune(node.right)
    leaf_errors = _pessimistic_errors(node.n_records, node.n_errors)
    if leaf_errors <= subtree_errors + 0.1:
        node.prediction = node.majority
        node.attribute = None
        node.threshold = None
        node.left = None
        node.right = None
        return leaf_errors
    return subtree_errors
