"""Evaluation reports for trained models: confusion matrix, per-class
precision/recall, and a formatted text summary.

The paper reports only overall accuracy; downstream users of a format
classifier need to know *which* confusions occur (predicting CSR for a DIA
matrix costs ~2x, predicting DIA for a power-law matrix costs ~100x), so
the report also weighs each confusion by its performance cost when given a
cost function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.features.parameters import FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.types import BASIC_FORMATS, FormatName

Predictor = Callable[[FeatureVector], FormatName]


@dataclass(frozen=True)
class ClassMetrics:
    """One class's precision / recall / F1 and support."""

    format_name: FormatName
    precision: float
    recall: float
    support: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2.0 * self.precision * self.recall
            / (self.precision + self.recall)
        )


@dataclass
class EvaluationReport:
    """Confusion matrix plus derived metrics for one model on one dataset."""

    classes: Tuple[FormatName, ...]
    #: confusion[actual][predicted] = count
    confusion: Dict[FormatName, Dict[FormatName, int]]
    accuracy: float
    per_class: Tuple[ClassMetrics, ...]
    #: Mean slowdown of the predicted format relative to the actual best
    #: (1.0 = every prediction performance-equivalent); None when no cost
    #: function was supplied.
    mean_slowdown: Optional[float] = None

    def metrics_for(self, fmt: FormatName) -> ClassMetrics:
        for metrics in self.per_class:
            if metrics.format_name is fmt:
                return metrics
        raise KeyError(f"no metrics for {fmt}")

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"accuracy: {self.accuracy:.1%}"]
        if self.mean_slowdown is not None:
            lines.append(
                f"mean slowdown vs oracle: {self.mean_slowdown:.3f}x"
            )
        corner = "actual \\ predicted"
        header = f"{corner:>20s}" + "".join(
            f"{c.value:>7s}" for c in self.classes
        )
        lines.append(header)
        for actual in self.classes:
            row = self.confusion.get(actual, {})
            lines.append(
                f"{actual.value:>20s}"
                + "".join(
                    f"{row.get(predicted, 0):>7d}"
                    for predicted in self.classes
                )
            )
        lines.append(
            f"{'class':>6s}{'precision':>11s}{'recall':>9s}"
            f"{'F1':>7s}{'support':>9s}"
        )
        for metrics in self.per_class:
            lines.append(
                f"{metrics.format_name.value:>6s}"
                f"{metrics.precision:>11.3f}{metrics.recall:>9.3f}"
                f"{metrics.f1:>7.3f}{metrics.support:>9d}"
            )
        return "\n".join(lines)


def evaluate(
    predictor: Predictor,
    dataset: TrainingDataset,
    classes: Sequence[FormatName] = BASIC_FORMATS,
    cost_fn: Optional[Callable[[FeatureVector, FormatName], float]] = None,
) -> EvaluationReport:
    """Evaluate any feature->format predictor on a labelled dataset.

    ``cost_fn(features, fmt)`` returns the (estimated) SpMV seconds of
    running ``features``'s matrix in ``fmt``; when given, the report also
    computes the mean predicted-vs-oracle slowdown — the end-to-end cost of
    the model's mistakes.
    """
    classes = tuple(classes)
    confusion: Dict[FormatName, Dict[FormatName, int]] = {
        c: {} for c in classes
    }
    hits = 0
    slowdowns: List[float] = []
    for record in dataset:
        actual = record.best_format
        assert actual is not None
        predicted = predictor(record)
        row = confusion.setdefault(actual, {})
        row[predicted] = row.get(predicted, 0) + 1
        if predicted is actual:
            hits += 1
        if cost_fn is not None:
            predicted_cost = cost_fn(record, predicted)
            actual_cost = cost_fn(record, actual)
            if actual_cost > 0:
                slowdowns.append(predicted_cost / actual_cost)

    per_class = []
    for cls in classes:
        true_positive = confusion.get(cls, {}).get(cls, 0)
        support = sum(confusion.get(cls, {}).values())
        predicted_as = sum(
            confusion.get(actual, {}).get(cls, 0) for actual in classes
        )
        precision = true_positive / predicted_as if predicted_as else 0.0
        recall = true_positive / support if support else 0.0
        per_class.append(
            ClassMetrics(
                format_name=cls,
                precision=precision,
                recall=recall,
                support=support,
            )
        )

    accuracy = hits / len(dataset) if len(dataset) else 1.0
    mean_slowdown = (
        sum(slowdowns) / len(slowdowns) if slowdowns else None
    )
    return EvaluationReport(
        classes=classes,
        confusion=confusion,
        accuracy=accuracy,
        per_class=tuple(per_class),
        mean_slowdown=mean_slowdown,
    )
