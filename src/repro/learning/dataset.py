"""Training datasets: labelled feature records (the "feature database").

Section 5.1: "all of these records together constitute the matrix feature
database".  A record is a :class:`FeatureVector` carrying its
``best_format`` target; this module adds collection-level operations
(labelling, splitting, class statistics, JSONL persistence).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import LearningError
from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.types import FormatName
from repro.util.rng import SeedLike, make_rng


@dataclass
class TrainingDataset:
    """An immutable bag of labelled feature records."""

    records: Tuple[FeatureVector, ...]

    def __post_init__(self) -> None:
        for record in self.records:
            if record.best_format is None:
                raise LearningError(
                    "all training records must carry a best_format label"
                )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def classes(self) -> List[FormatName]:
        """Distinct labels, most frequent first."""
        counts = self.class_counts()
        return sorted(counts, key=lambda c: (-counts[c], c.value))

    def class_counts(self) -> Dict[FormatName, int]:
        counts: Dict[FormatName, int] = {}
        for record in self.records:
            assert record.best_format is not None
            counts[record.best_format] = counts.get(record.best_format, 0) + 1
        return counts

    def majority_class(self) -> FormatName:
        if not self.records:
            raise LearningError("empty dataset has no majority class")
        return self.classes[0]

    def split(
        self, test_fraction: float, seed: SeedLike = 0
    ) -> Tuple["TrainingDataset", "TrainingDataset"]:
        """(train, test) split — the paper trains on 2055 of 2386 matrices
        and evaluates on the remaining 331."""
        if not 0.0 < test_fraction < 1.0:
            raise LearningError(
                f"test_fraction must be in (0, 1), got {test_fraction}"
            )
        rng = make_rng(seed)
        indices = rng.permutation(len(self.records))
        n_test = max(1, int(round(test_fraction * len(self.records))))
        test_idx = set(indices[:n_test].tolist())
        train = tuple(
            r for i, r in enumerate(self.records) if i not in test_idx
        )
        test = tuple(r for i, r in enumerate(self.records) if i in test_idx)
        return TrainingDataset(train), TrainingDataset(test)

    def folds(
        self, k: int, seed: SeedLike = 0
    ) -> List[Tuple["TrainingDataset", "TrainingDataset"]]:
        """k-fold cross-validation splits."""
        if k < 2 or k > len(self.records):
            raise LearningError(f"cannot make {k} folds of {len(self)} records")
        rng = make_rng(seed)
        order = rng.permutation(len(self.records))
        chunks = np.array_split(order, k)
        result = []
        for i in range(k):
            test_idx = set(chunks[i].tolist())
            train = tuple(
                r for j, r in enumerate(self.records) if j not in test_idx
            )
            test = tuple(
                r for j, r in enumerate(self.records) if j in test_idx
            )
            result.append((TrainingDataset(train), TrainingDataset(test)))
        return result

    # ------------------------------------------------------------------
    # Persistence (JSONL: one record per line)
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        path = Path(path)
        with path.open("w") as fh:
            for record in self.records:
                row = record.as_dict()
                assert record.best_format is not None
                row["best_format"] = record.best_format.value
                fh.write(json.dumps(_jsonable(row)) + "\n")

    @classmethod
    def load(cls, path: Path) -> "TrainingDataset":
        records = []
        with Path(path).open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                label = FormatName(row.pop("best_format"))
                values = {
                    name: _from_json(row[name]) for name in FEATURE_NAMES
                }
                values["m"] = int(values["m"])
                values["n"] = int(values["n"])
                values["nnz"] = int(values["nnz"])
                values["ndiags"] = int(values["ndiags"])
                values["max_rd"] = int(values["max_rd"])
                records.append(FeatureVector(best_format=label, **values))
        return cls(tuple(records))


def _jsonable(row: Dict[str, object]) -> Dict[str, object]:
    out = {}
    for key, value in row.items():
        if isinstance(value, float) and math.isinf(value):
            out[key] = "inf"
        else:
            out[key] = value
    return out


def _from_json(value: object) -> float:
    if value == "inf":
        return math.inf
    return float(value)  # type: ignore[arg-type]


def build_dataset(
    matrices: Iterable,
    labeler: Callable[[FeatureVector], FormatName],
    feature_fn: Callable = None,
) -> TrainingDataset:
    """Extract features from ``(spec, matrix)`` pairs and label each record.

    ``labeler`` maps a feature vector to its best format — in the offline
    pipeline that is "argmin of the measured/simulated SpMV times"
    (see :func:`repro.tuner.smat.label_with_backend`).
    """
    from repro.features.extract import extract_features

    feature_fn = feature_fn or extract_features
    records = []
    for _, matrix in matrices:
        fv = feature_fn(matrix)
        records.append(fv.with_label(labeler(fv)))
    return TrainingDataset(tuple(records))
