"""Feature-importance analysis for trained trees and rulesets.

Section 3 advertises that SMAT makes it "convenient to add or remove
parameters from the learning model" to balance accuracy and training time.
Doing that sensibly requires knowing which of the 11 Table 2 parameters the
model actually leans on; this module measures it two ways:

* **split importance** — training records routed through decisions on each
  attribute, weighted by depth (a root split on ER_DIA matters more than a
  depth-8 tie-breaker),
* **permutation importance** — accuracy drop when one attribute's values
  are shuffled across the evaluation set (model-agnostic; works for
  rulesets and boosted ensembles too).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.learning.tree import DecisionTree, TreeNode
from repro.types import FormatName
from repro.util.rng import SeedLike, make_rng


def split_importance(tree: DecisionTree) -> Dict[str, float]:
    """Depth-weighted record flow through each attribute's splits.

    Normalised to sum to 1 over the attributes that appear; attributes the
    tree never splits on get 0.
    """
    raw: Dict[str, float] = {name: 0.0 for name in tree.attributes}
    _walk(tree.root, raw, depth=0)
    total = sum(raw.values())
    if total <= 0.0:
        return raw
    return {name: value / total for name, value in raw.items()}


def _walk(node: TreeNode, raw: Dict[str, float], depth: int) -> None:
    if node.is_leaf:
        return
    assert node.attribute is not None
    raw[node.attribute] = raw.get(node.attribute, 0.0) + node.n_records / (
        1.0 + depth
    )
    assert node.left is not None and node.right is not None
    _walk(node.left, raw, depth + 1)
    _walk(node.right, raw, depth + 1)


def permutation_importance(
    predictor: Callable[[FeatureVector], FormatName],
    dataset: TrainingDataset,
    attributes: Sequence[str] = FEATURE_NAMES,
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """Accuracy drop per attribute under value shuffling.

    Positive values mean the model relies on the attribute; ~0 means it is
    ignored (or redundant with another attribute).
    """
    rng = make_rng(seed)
    records = list(dataset.records)
    if not records:
        return {name: 0.0 for name in attributes}

    def accuracy(rows) -> float:
        hits = sum(
            1 for r in rows if predictor(r) is r.best_format
        )
        return hits / len(rows)

    baseline = accuracy(records)
    importances: Dict[str, float] = {}
    for name in attributes:
        values = [r.value(name) for r in records]
        shuffled = rng.permutation(values)
        permuted = []
        for record, new_value in zip(records, shuffled):
            data = record.as_dict()
            data[name] = float(new_value)
            for int_key in ("m", "n", "nnz", "ndiags", "max_rd"):
                data[int_key] = int(data[int_key])
            permuted.append(
                FeatureVector(best_format=record.best_format, **data)
            )
        importances[name] = baseline - accuracy(permuted)
    return importances


def describe_importance(importances: Dict[str, float]) -> str:
    """Sorted human-readable importance table (paper parameter names)."""
    from repro.features.parameters import PAPER_NAMES

    lines = []
    for name, value in sorted(
        importances.items(), key=lambda kv: -kv[1]
    ):
        label = PAPER_NAMES.get(name, name)
        bar = "#" * int(round(max(value, 0.0) * 50))
        lines.append(f"  {label:>14s} {value:7.3f} {bar}")
    return "\n".join(lines)
