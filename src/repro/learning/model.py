"""The trained learning model: tree -> ruleset -> tailored groups.

``train_model`` is the whole offline learning pipeline of Figure 4's
"Data Mining (Using C5.0)" box; :class:`LearningModel` is what the runtime
loads — it answers Equation 1's mapping
``f(x1..xn, TH) -> Cn(DIA, ELL, CSR, COO)`` with a confidence attached.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import LearningError
from repro.features.parameters import FeatureVector
from repro.learning.dataset import TrainingDataset
from repro.learning.rules import Rule, RuleSet, extract_rules
from repro.learning.tailor import (
    DEFAULT_ACCURACY_GAP,
    GroupedRules,
    group_rules,
    tailor_rules,
)
from repro.learning.tree import DecisionTree, TreeLearner
from repro.types import FormatName


@dataclass
class LearningModel:
    """A tailored, format-grouped ruleset ready for runtime prediction."""

    grouped: GroupedRules
    #: The full (pre-tailoring) ruleset, kept for ablations and reporting.
    full_ruleset: RuleSet
    #: The tailored flat ruleset the groups were built from.
    tailored_ruleset: RuleSet
    training_accuracy: float

    def predict(
        self, features: FeatureVector
    ) -> Tuple[FormatName, float, Optional[Rule]]:
        """(format, confidence, matching rule) for one feature vector.

        Groups are consulted in DIA, ELL, CSR, COO order; the first group
        with a matching rule wins and reports the *format confidence* (the
        group's best rule confidence — Section 6's definition).  No match
        falls back to the default format with confidence 0.
        """
        for group in self.grouped.groups:
            rule = group.first_match(features)
            if rule is not None:
                return group.format_name, group.format_confidence, rule
        return self.grouped.default_format, 0.0, None

    def predict_format(self, features: FeatureVector) -> FormatName:
        return self.predict(features)[0]

    def accuracy(self, dataset: TrainingDataset) -> float:
        if len(dataset) == 0:
            return 1.0
        hits = sum(
            1
            for record in dataset
            if self.predict_format(record) is record.best_format
        )
        return hits / len(dataset)

    # ------------------------------------------------------------------
    # Persistence — the paper's "generate the model once, reuse it".
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        payload = {
            "default_format": self.grouped.default_format.value,
            "training_accuracy": self.training_accuracy,
            "tailored_rules": [_rule_json(r) for r in self.tailored_ruleset.rules],
            "full_rules": [_rule_json(r) for r in self.full_ruleset.rules],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Path) -> "LearningModel":
        try:
            payload = json.loads(Path(path).read_text())
            default = FormatName(payload["default_format"])
            tailored = RuleSet(
                rules=tuple(
                    _rule_from_json(r) for r in payload["tailored_rules"]
                ),
                default_format=default,
            )
            full = RuleSet(
                rules=tuple(_rule_from_json(r) for r in payload["full_rules"]),
                default_format=default,
            )
            return cls(
                grouped=group_rules(tailored),
                full_ruleset=full,
                tailored_ruleset=tailored,
                training_accuracy=float(payload["training_accuracy"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LearningError(f"malformed model file {path}: {exc}") from exc


def train_model(
    dataset: TrainingDataset,
    min_leaf: int = 4,
    max_depth: int = 12,
    prune: bool = True,
    accuracy_gap: float = DEFAULT_ACCURACY_GAP,
) -> LearningModel:
    """The full offline pipeline: tree, ruleset, tailoring, grouping."""
    learner = TreeLearner(min_leaf=min_leaf, max_depth=max_depth, prune=prune)
    tree = learner.fit(dataset)
    full = extract_rules(tree, dataset)
    tailored = tailor_rules(full, dataset, accuracy_gap=accuracy_gap)
    grouped = group_rules(tailored)
    model = LearningModel(
        grouped=grouped,
        full_ruleset=full,
        tailored_ruleset=tailored,
        training_accuracy=0.0,
    )
    model.training_accuracy = model.accuracy(dataset)
    return model


def train_tree(
    dataset: TrainingDataset,
    min_leaf: int = 4,
    max_depth: int = 12,
    prune: bool = True,
) -> DecisionTree:
    """Just the tree — for the tree-vs-ruleset ablation."""
    return TreeLearner(
        min_leaf=min_leaf, max_depth=max_depth, prune=prune
    ).fit(dataset)


def _rule_json(rule: Rule) -> dict:
    return rule.to_dict()


def _rule_from_json(payload: dict) -> Rule:
    return Rule.from_dict(payload)
