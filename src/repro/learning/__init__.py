"""The machine-learning subsystem (Section 5): the C5.0 substitute."""

from repro.learning.boosting import BoostedModel, train_boosted
from repro.learning.crossval import CrossValResult, cross_validate
from repro.learning.dataset import TrainingDataset, build_dataset
from repro.learning.model import LearningModel, train_model, train_tree
from repro.learning.importance import (
    describe_importance,
    permutation_importance,
    split_importance,
)
from repro.learning.report import ClassMetrics, EvaluationReport, evaluate
from repro.learning.rules import Condition, Rule, RuleSet, extract_rules
from repro.learning.tailor import (
    GROUP_ORDER,
    FormatGroup,
    GroupedRules,
    group_rules,
    tailor_rules,
)
from repro.learning.tree import DecisionTree, TreeLearner, TreeNode

__all__ = [
    "BoostedModel",
    "ClassMetrics",
    "Condition",
    "EvaluationReport",
    "evaluate",
    "CrossValResult",
    "DecisionTree",
    "FormatGroup",
    "GROUP_ORDER",
    "GroupedRules",
    "LearningModel",
    "Rule",
    "RuleSet",
    "TrainingDataset",
    "TreeLearner",
    "TreeNode",
    "build_dataset",
    "cross_validate",
    "describe_importance",
    "permutation_importance",
    "split_importance",
    "extract_rules",
    "group_rules",
    "tailor_rules",
    "train_boosted",
    "train_model",
    "train_tree",
]
