"""SMAT — an input adaptive auto-tuner for sparse matrix-vector multiplication.

Reproduction of Li, Tan, Chen, Sun (PLDI 2013).  The public API mirrors the
paper's unified interface: build (or load) a model offline with
:class:`repro.tuner.SMAT`, then call ``smat_spmv`` / ``SMAT.spmv`` with any
CSR matrix — format selection and kernel selection happen automatically.
"""

from repro.errors import (
    BackpressureError,
    ConversionError,
    FormatError,
    KernelError,
    LearningError,
    ServeError,
    SmatError,
    SolverError,
    TuningError,
)
from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    HYBMatrix,
    SparseMatrix,
    convert,
)
from repro.types import BASIC_FORMATS, FormatName, Precision


def __getattr__(name: str):
    """Lazy top-level access to the heavier subsystems.

    ``repro.SMAT``, ``repro.AMGSolver`` etc. import their subpackages on
    first use so that ``import repro`` stays cheap for format-only users.
    """
    lazy = {
        "SMAT": ("repro.tuner", "SMAT"),
        "SmatConfig": ("repro.tuner", "SmatConfig"),
        "smat_scsr_spmv": ("repro.tuner", "smat_scsr_spmv"),
        "smat_dcsr_spmv": ("repro.tuner", "smat_dcsr_spmv"),
        "AMGSolver": ("repro.amg", "AMGSolver"),
        "ServingEngine": ("repro.serve", "ServingEngine"),
        "ServeConfig": ("repro.serve", "ServeConfig"),
        "PlanCache": ("repro.serve", "PlanCache"),
        "MetricsRegistry": ("repro.serve", "MetricsRegistry"),
        "SimulatedBackend": ("repro.machine", "SimulatedBackend"),
        "WallClockBackend": ("repro.machine", "WallClockBackend"),
        "Tracer": ("repro.obs", "Tracer"),
        "Span": ("repro.obs", "Span"),
        "overhead_report": ("repro.obs", "overhead_report"),
        "extract_features": ("repro.features", "extract_features"),
        "generate_collection": ("repro.collection", "generate_collection"),
        "representatives": ("repro.collection", "representatives"),
    }
    if name in lazy:
        import importlib

        module, attr = lazy[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


from repro.util.version import package_version

__version__ = package_version()

__all__ = [
    "BASIC_FORMATS",
    "BCSRMatrix",
    "BackpressureError",
    "COOMatrix",
    "CSRMatrix",
    "ConversionError",
    "DIAMatrix",
    "ELLMatrix",
    "FormatError",
    "FormatName",
    "HYBMatrix",
    "KernelError",
    "LearningError",
    "Precision",
    "ServeError",
    "SmatError",
    "SolverError",
    "SparseMatrix",
    "TuningError",
    "convert",
    "__version__",
]
