"""The feature database on disk (Figure 4's "Feature Database" box).

A thin layer over :class:`repro.learning.TrainingDataset`'s JSONL format
adding collection metadata (matrix name, application domain), so the
offline stage can be resumed and audited — the "reusable training" of the
paper's contribution list.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.features.parameters import FEATURE_NAMES, FeatureVector
from repro.types import FormatName


@dataclass(frozen=True)
class FeatureRecord:
    """One database row: identity + features + label."""

    name: str
    domain: str
    features: FeatureVector

    def to_json(self) -> str:
        row = {"name": self.name, "domain": self.domain}
        for key, value in self.features.as_dict().items():
            row[key] = "inf" if math.isinf(value) else value
        assert self.features.best_format is not None
        row["best_format"] = self.features.best_format.value
        return json.dumps(row)

    @classmethod
    def from_json(cls, line: str) -> "FeatureRecord":
        row = json.loads(line)
        values = {}
        for key in FEATURE_NAMES:
            raw = row[key]
            values[key] = math.inf if raw == "inf" else float(raw)
        for int_key in ("m", "n", "nnz", "ndiags", "max_rd"):
            values[int_key] = int(values[int_key])
        features = FeatureVector(
            best_format=FormatName(row["best_format"]), **values
        )
        return cls(name=row["name"], domain=row["domain"], features=features)


class FeatureDatabase:
    """Append-friendly JSONL store of labelled feature records."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def append(self, record: FeatureRecord) -> None:
        with self.path.open("a") as fh:
            fh.write(record.to_json() + "\n")

    def write_all(self, records: List[FeatureRecord]) -> None:
        with self.path.open("w") as fh:
            for record in records:
                fh.write(record.to_json() + "\n")

    def __iter__(self) -> Iterator[FeatureRecord]:
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for line in fh:
                if line.strip():
                    yield FeatureRecord.from_json(line)

    def to_dataset(self):
        """The records as a :class:`repro.learning.TrainingDataset`."""
        from repro.learning.dataset import TrainingDataset

        return TrainingDataset(
            tuple(record.features for record in self)
        )

    def domain_counts(self) -> dict:
        counts: dict = {}
        for record in self:
            counts[record.domain] = counts.get(record.domain, 0) + 1
        return counts
