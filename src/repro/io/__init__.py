"""I/O: Matrix Market files, the feature database, ruleset export."""

from repro.io.feature_db import FeatureDatabase, FeatureRecord
from repro.io.matrix_market import read_matrix_market, write_matrix_market
from repro.io.ruleset_export import export_ruleset_c

__all__ = [
    "FeatureDatabase",
    "FeatureRecord",
    "export_ruleset_c",
    "read_matrix_market",
    "write_matrix_market",
]
