"""Matrix Market (.mtx) reader/writer.

The UF collection distributes matrices in Matrix Market coordinate format;
supporting it makes the library usable on the real collection when a copy
is available.  Handles the ``coordinate`` format with ``real``, ``integer``
and ``pattern`` fields and the ``general``/``symmetric`` symmetries — the
cases that cover the UF collection.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import FormatError
from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE

PathLike = Union[str, Path]


def read_matrix_market(path: PathLike) -> CSRMatrix:
    """Read a Matrix Market coordinate file into CSR."""
    with Path(path).open() as fh:
        return _read(fh, str(path))


def _read(fh: TextIO, name: str) -> CSRMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise FormatError(f"{name}: missing MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise FormatError(f"{name}: malformed header: {header.strip()}")
    _, obj, fmt, field, symmetry = parts[:5]
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise FormatError(
            f"{name}: only coordinate matrices are supported, got "
            f"{obj}/{fmt}"
        )
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"{name}: unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise FormatError(f"{name}: unsupported symmetry {symmetry!r}")

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    try:
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())
    except ValueError:
        raise FormatError(f"{name}: malformed size line: {line.strip()}")

    rows = np.empty(nnz, dtype=INDEX_DTYPE)
    cols = np.empty(nnz, dtype=INDEX_DTYPE)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        entry = fh.readline().split()
        if len(entry) < 2:
            raise FormatError(f"{name}: truncated at entry {k + 1}/{nnz}")
        rows[k] = int(entry[0]) - 1  # 1-based on disk
        cols[k] = int(entry[1]) - 1
        vals[k] = float(entry[2]) if field != "pattern" else 1.0

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = np.concatenate([rows, cols[off_diag]])
        mirrored_cols = np.concatenate([cols, rows[off_diag]])
        vals = np.concatenate([vals, vals[off_diag]])
        rows, cols = mirrored_rows, mirrored_cols

    return CSRMatrix.from_triplets(rows, cols, vals, (n_rows, n_cols))


def write_matrix_market(matrix: CSRMatrix, path: PathLike) -> None:
    """Write a CSR matrix as a general real coordinate file."""
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    with Path(path).open("w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
        for r, c, v in zip(rows, matrix.indices, matrix.data):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
