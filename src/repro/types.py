"""Common enums and type aliases shared across the library."""

from __future__ import annotations

import enum

import numpy as np


class Precision(enum.Enum):
    """Numerical precision of matrix values and SpMV arithmetic.

    Mirrors the paper's single-precision (SP) / double-precision (DP) split:
    every experiment in Section 7 is reported for both.
    """

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype implementing this precision."""
        return np.dtype(np.float32 if self is Precision.SINGLE else np.float64)

    @property
    def bytes_per_value(self) -> int:
        """Storage size of one value in bytes (4 for SP, 8 for DP)."""
        return int(self.dtype.itemsize)

    @classmethod
    def from_dtype(cls, dtype: object) -> "Precision":
        """Map a NumPy dtype (or anything castable to one) to a precision."""
        dt = np.dtype(dtype)
        if dt == np.float32:
            return cls.SINGLE
        if dt == np.float64:
            return cls.DOUBLE
        raise ValueError(f"unsupported dtype for SpMV values: {dt}")


class FormatName(enum.Enum):
    """The four basic storage formats of the paper (Section 2.1) plus the
    extension formats used to demonstrate SMAT's extensibility (Section 3).
    """

    CSR = "CSR"
    COO = "COO"
    DIA = "DIA"
    ELL = "ELL"
    BCSR = "BCSR"
    HYB = "HYB"
    CSC = "CSC"
    SKY = "SKY"
    BDIA = "BDIA"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The candidate formats SMAT's learning model classifies into
#: (the ``Cn(DIA, ELL, CSR, COO)`` of Equation 1).
BASIC_FORMATS = (FormatName.DIA, FormatName.ELL, FormatName.CSR, FormatName.COO)

#: Index dtype used by all compressed structures.
INDEX_DTYPE = np.dtype(np.int64)
