"""Command-line interface: the offline pipeline and quick predictions.

``python -m repro <command>``:

* ``build-db``   — generate + label the synthetic collection into a JSONL
  feature database (the expensive offline measurement step),
* ``train``      — train the ruleset model from a feature database and save
  the reusable SMAT artifacts (model.json + kernels.json),
* ``predict``    — decide the format for a Matrix Market file (or a built-in
  demo matrix) with a saved model,
* ``evaluate``   — confusion matrix / per-class report of a saved model on
  a feature database,
* ``stats``      — domain and format-affinity distribution of a database,
* ``serve-bench``— replay a synthetic concurrent workload through the
  ``repro.serve`` engine and print its scoreboard (``--trace`` captures
  the replay as a Chrome trace; ``--value-churn N`` serves N value
  updates per matrix to exercise the tier-2 refresh fast path;
  ``--cluster`` replays against ``repro.cluster`` instead — ``--workers
  N`` then means N shard *processes* behind the shared-memory plan
  store, and ``--bench-json`` records the run as the ``serve/sharded``
  section of ``BENCH_perf.json``),
* ``trace``      — route one matrix through the serving engine with
  tracing on and print the span tree + per-stage overhead report,
* ``bench-perf`` — time the vectorized cold path (conversions, feature
  extraction, plan build, SpMV kernels) against the retained Python-loop
  references and write ``BENCH_perf.json``.

Every command prints what it did and where artifacts landed; all
randomness is seeded, so runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.types import Precision


def build_parser() -> argparse.ArgumentParser:
    from repro.util.version import package_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMAT sparse SpMV auto-tuner (PLDI 2013 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    db = sub.add_parser("build-db", help="generate + label the collection")
    db.add_argument("--out", type=Path, required=True,
                    help="output JSONL feature database")
    db.add_argument("--scale", type=float, default=0.1,
                    help="fraction of the 2376-matrix collection (default 0.1)")
    db.add_argument("--size-scale", type=float, default=0.5,
                    help="matrix size multiplier (default 0.5)")
    db.add_argument("--platform", default="intel", choices=["intel", "amd"])
    db.add_argument("--precision", default="double",
                    choices=["single", "double"])
    db.add_argument("--seed", type=int, default=2013)

    train = sub.add_parser("train", help="train a model from a database")
    train.add_argument("--db", type=Path, required=True)
    train.add_argument("--out", type=Path, required=True,
                       help="output directory for model.json/kernels.json")
    train.add_argument("--platform", default="intel",
                       choices=["intel", "amd"])
    train.add_argument("--min-leaf", type=int, default=8)
    train.add_argument("--max-depth", type=int, default=10)
    train.add_argument("--show-rules", action="store_true")

    predict = sub.add_parser("predict", help="decide a matrix's format")
    predict.add_argument("--model", type=Path, required=True)
    source = predict.add_mutually_exclusive_group(required=True)
    source.add_argument("--mtx", type=Path, help="Matrix Market file")
    source.add_argument(
        "--demo",
        choices=["banded", "uniform", "powerlaw", "random"],
        help="synthesize a demo matrix instead of reading one",
    )
    predict.add_argument("--platform", default="intel",
                         choices=["intel", "amd"])

    evaluate = sub.add_parser("evaluate", help="report model accuracy")
    evaluate.add_argument("--model", type=Path, required=True)
    evaluate.add_argument("--db", type=Path, required=True)

    stats = sub.add_parser("stats", help="database distribution summary")
    stats.add_argument("--db", type=Path, required=True)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a synthetic workload through the serving engine",
    )
    serve.add_argument("--matrices", type=int, default=20,
                       help="distinct matrices in the pool (default 20)")
    serve.add_argument("--requests", type=int, default=400,
                       help="total SpMV requests to replay (default 400)")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads (default 4)")
    serve.add_argument("--workers", type=int, default=4,
                       help="engine worker threads, or shard processes "
                            "under --cluster (default 4)")
    serve.add_argument("--cluster", action="store_true",
                       help="replay against the multi-process sharded "
                            "cluster (repro.cluster): --workers N spawns "
                            "N shard worker processes behind consistent-"
                            "hash routing and a shared-memory plan store")
    serve.add_argument("--crash-after", type=int, default=None,
                       metavar="N", dest="crash_after",
                       help="chaos (needs --cluster): every shard worker "
                            "incarnation hard-crashes (os._exit) after "
                            "serving N requests, exercising crash "
                            "detection, respawn, plan re-warm and "
                            "re-dispatch")
    serve.add_argument("--bench-json", type=Path, default=None,
                       metavar="PATH", dest="bench_json",
                       help="needs --cluster or --fan-in: merge a "
                            "serve/sharded (cluster: throughput vs a "
                            "--workers 1 baseline, zero-copy counter, "
                            "repair stats) or serve/fan_in (batched vs "
                            "unbatched throughput, SpMM counters) section "
                            "into the BENCH_perf.json-style report at PATH")
    serve.add_argument("--fan-in", type=int, default=None,
                       metavar="N", dest="fan_in",
                       help="fan-in mode: submit same-matrix bursts of N "
                            "requests each (--requests total, round-robin "
                            "over the pool) and replay them twice — through "
                            "a batching engine (SpMM fast path) and an "
                            "unbatched one — reporting the batched-vs-"
                            "unbatched throughput")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="S", dest="batch_window",
                       help="needs --fan-in: seconds a dequeued request "
                            "waits for same-fingerprint company before the "
                            "batch executes (default 0.005)")
    serve.add_argument("--max-batch-rhs", type=int, default=None,
                       metavar="K", dest="max_batch_rhs",
                       help="needs --fan-in: RHS-vector cap per coalesced "
                            "SpMM (default: the --fan-in burst size)")
    serve.add_argument("--cache-entries", type=int, default=64,
                       help="plan-cache entry cap (default 64)")
    serve.add_argument("--cache-bytes", type=int, default=None,
                       help="plan-cache byte budget (default unlimited)")
    serve.add_argument("--train-scale", type=float, default=0.05,
                       help="training collection fraction (default 0.05)")
    serve.add_argument("--online", action="store_true",
                       help="serve through OnlineSmat (learn from fallbacks)")
    serve.add_argument("--online-retrain", action="store_true",
                       dest="online_retrain",
                       help="closed-loop mode (implies --online): force "
                            "execute-and-measure on every cold decision so "
                            "serve records accumulate fast, retrain every "
                            "few records, and require the engine to observe "
                            "a ruleset hot-swap mid-replay (exits non-zero "
                            "if no retrain or no swap happened)")
    serve.add_argument("--tune-budget", type=float, default=None,
                       metavar="UNITS", dest="tune_budget",
                       help="per-decision overhead budget in CSR-SpMV "
                            "units; enables the staged decision cascade "
                            "(cheap bounds -> full extraction -> "
                            "execute-and-measure -> CSR floor)")
    serve.add_argument("--value-churn", type=int, default=None,
                       metavar="N", dest="value_churn",
                       help="value-churn mode: serve N value updates per "
                            "matrix (same sparsity structure, fresh values, "
                            "each exactly once; --requests is ignored) to "
                            "exercise the structure-keyed plan-refresh fast "
                            "path")
    serve.add_argument("--no-structure-cache", action="store_true",
                       help="disable the tier-2 structure index (every "
                            "value update pays a full plan build; the "
                            "baseline for --value-churn comparisons)")
    serve.add_argument("--structure-churn", type=int, default=None,
                       metavar="N", dest="structure_churn",
                       help="structure-churn mode: stream one evolving "
                            "power-law graph through the engine for N "
                            "steps, each serving a burst of SpMVs and then "
                            "applying an edge insert/delete delta via the "
                            "plan-migration path (patch / refresh / retune; "
                            "--requests sets the total serve count, spread "
                            "over the steps)")
    serve.add_argument("--churn-nodes", type=int, default=600,
                       metavar="M", dest="churn_nodes",
                       help="needs --structure-churn: node count of the "
                            "evolving graph (default 600)")
    serve.add_argument("--churn-fraction", type=float, default=0.02,
                       metavar="F", dest="churn_fraction",
                       help="needs --structure-churn: per-step edge churn "
                            "as a fraction of current nnz (default 0.02; "
                            "small fractions exercise the in-place patch "
                            "policy, large ones force retunes)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="end-to-end per-request deadline in seconds "
                            "(queue wait + plan build + execute)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retries for transient execute failures "
                            "(default 2)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive plan-build failures that open a "
                            "fingerprint's circuit breaker (default 3)")
    serve.add_argument("--faults", action="append", default=None,
                       metavar="SPEC",
                       help="inject deterministic faults for chaos replay; "
                            "SPEC is 'SITE[,key=value...]' with SITE in "
                            "{decide,convert,refresh,execute,spmm,"
                            "codegen.compile}, e.g. "
                            "'decide,rate=0.5,stop=20' or "
                            "'execute,kind=latency,latency=0.002'; "
                            "repeatable")
    serve.add_argument("--kernel-backend", default="generic",
                       choices=["generic", "codegen"],
                       help="kernel backend for plan builds (default "
                            "generic); codegen compiles a per-matrix "
                            "specialized kernel into each plan when it "
                            "beats the registry kernel")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for probabilistic fault rules (default 0)")
    serve.add_argument("--trace", type=Path, default=None, metavar="OUT",
                       help="capture the replay with repro.obs and write a "
                            "Chrome trace-event JSON to OUT (open in "
                            "chrome://tracing or Perfetto); also prints the "
                            "per-stage overhead report")
    serve.add_argument("--platform", default="intel",
                       choices=["intel", "amd"])
    serve.add_argument("--seed", type=int, default=2013)

    trace = sub.add_parser(
        "trace",
        help="trace one matrix end to end through the serving engine",
    )
    trace.add_argument(
        "matrix",
        help="Matrix Market file, or a demo name "
             "(banded, uniform, powerlaw, random)",
    )
    trace.add_argument("--requests", type=int, default=3,
                       help="requests to serve for the same matrix "
                            "(default 3: cold build + cache hits)")
    trace.add_argument("--out", type=Path, default=None,
                       help="write a Chrome trace-event JSON here")
    trace.add_argument("--jsonl", type=Path, default=None,
                       help="write one span per line as JSONL here")
    trace.add_argument("--train-scale", type=float, default=0.05,
                       help="training collection fraction (default 0.05)")
    trace.add_argument("--platform", default="intel",
                       choices=["intel", "amd"])
    trace.add_argument("--seed", type=int, default=2013)

    bench = sub.add_parser(
        "bench-perf",
        help="perf-regression benchmark of the vectorized cold path",
    )
    bench.add_argument("--out", type=Path, default=Path("BENCH_perf.json"),
                       help="output JSON report (default BENCH_perf.json)")
    bench.add_argument("--suite", default=None,
                       choices=["smoke", "quick", "full"],
                       help="benchmark suite (default full)")
    bench.add_argument("--quick", action="store_true",
                       help="shorthand for --suite quick (the CI smoke run)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per vectorized op (default 3)")
    bench.add_argument("--assert-speedup", type=float, default=None,
                       metavar="X",
                       help="exit 1 unless CSR->ELL and CSR->DIA conversion "
                            "beat the loop reference by at least Xx")
    bench.add_argument("--workers", type=int, default=None,
                       help="THREAD-kernel worker count (default: cpu count)")
    bench.add_argument("--kernel-backend", default="codegen",
                       choices=["generic", "codegen"],
                       help="measure the codegen/ section (default codegen; "
                            "generic records the section as skipped)")
    bench.add_argument("--seed", type=int, default=2013)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "build-db": _cmd_build_db,
        "train": _cmd_train,
        "predict": _cmd_predict,
        "evaluate": _cmd_evaluate,
        "stats": _cmd_stats,
        "serve-bench": _cmd_serve_bench,
        "trace": _cmd_trace,
        "bench-perf": _cmd_bench_perf,
    }[args.command]
    return handler(args)


# ---------------------------------------------------------------------------

def _backend(platform_name: str, precision_name: str = "double"):
    from repro.machine import SimulatedBackend, platform

    return SimulatedBackend(
        platform(platform_name), Precision(precision_name)
    )


def _cmd_build_db(args: argparse.Namespace) -> int:
    from repro.collection import generate_collection
    from repro.features import extract_features
    from repro.io import FeatureDatabase, FeatureRecord
    from repro.tuner import search_kernels
    from repro.tuner.smat import label_matrix

    backend = _backend(args.platform, args.precision)
    kernels = search_kernels(backend)
    records = []
    for spec, matrix in generate_collection(
        seed=args.seed, scale=args.scale, size_scale=args.size_scale
    ):
        features = extract_features(matrix)
        label = label_matrix(matrix, features, kernels, backend)
        records.append(
            FeatureRecord(spec.name, spec.domain, features.with_label(label))
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    FeatureDatabase(args.out).write_all(records)
    print(f"labelled {len(records)} matrices -> {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.io import FeatureDatabase
    from repro.tuner import SMAT

    dataset = FeatureDatabase(args.db).to_dataset()
    if len(dataset) == 0:
        print(f"error: empty feature database {args.db}", file=sys.stderr)
        return 1
    backend = _backend(args.platform)
    smat = SMAT.from_dataset(
        dataset, backend=backend,
        min_leaf=args.min_leaf, max_depth=args.max_depth,
    )
    smat.save(args.out)
    print(
        f"trained on {len(dataset)} records "
        f"(training accuracy {smat.model.training_accuracy:.1%}); "
        f"saved to {args.out}"
    )
    if args.show_rules:
        print(smat.model.grouped.describe())
    return 0


def _demo_matrix(kind: str):
    from repro.collection import banded, graphs, random_sparse

    if kind == "banded":
        return banded.banded_matrix(4000, 7, seed=1)
    if kind == "uniform":
        return graphs.uniform_bipartite(5000, 5000, 3, seed=2)
    if kind == "powerlaw":
        return graphs.power_law_graph(6000, exponent=2.2, seed=3)
    return random_sparse.uniform_random(4000, 4000, 10.0, seed=4)


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.io import read_matrix_market
    from repro.tuner import SMAT

    backend = _backend(args.platform)
    smat = SMAT.load(args.model, backend=backend)
    if args.mtx is not None:
        matrix = read_matrix_market(args.mtx)
        source = str(args.mtx)
    else:
        matrix = _demo_matrix(args.demo)
        source = f"demo:{args.demo}"
    decision = smat.decide(matrix)
    path = "execute-and-measure" if decision.used_fallback else "model"
    print(f"matrix     : {source} ({matrix.n_rows}x{matrix.n_cols}, "
          f"{matrix.nnz} nnz)")
    print(f"prediction : {decision.predicted_format.value} "
          f"(confidence {decision.confidence:.2f}, via {path})")
    print(f"chosen     : {decision.format_name.value} "
          f"[{decision.kernel.name}]")
    print(f"overhead   : {decision.overhead_units:.1f} CSR-SpMVs")
    if decision.matched_rule is not None:
        print(f"rule       : {decision.matched_rule}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.io import FeatureDatabase
    from repro.learning.model import LearningModel
    from repro.learning.report import evaluate

    model = LearningModel.load(Path(args.model) / "model.json")
    dataset = FeatureDatabase(args.db).to_dataset()
    if len(dataset) == 0:
        print(f"error: empty feature database {args.db}", file=sys.stderr)
        return 1
    report = evaluate(model.predict_format, dataset)
    print(report.describe())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.io import FeatureDatabase

    db = FeatureDatabase(args.db)
    records = list(db)
    if not records:
        print(f"error: empty feature database {args.db}", file=sys.stderr)
        return 1
    formats = Counter(r.features.best_format.value for r in records)
    domains = Counter(r.domain for r in records)
    total = len(records)
    print(f"{total} records")
    print("format affinity:")
    for fmt, count in formats.most_common():
        print(f"  {fmt:5s} {count:5d} ({100 * count / total:.0f}%)")
    print("top domains:")
    for domain, count in domains.most_common(8):
        print(f"  {domain:35s} {count:5d}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.collection import generate_collection
    from repro.serve import (
        FaultPlan,
        ServeConfig,
        ServingEngine,
        build_matrix_pool,
        churn_schedule,
        popularity_schedule,
        replay,
        value_churn_pool,
    )
    from repro.tuner import SMAT, OnlineSmat

    if args.online_retrain:
        args.online = True
    if args.tune_budget is not None and args.tune_budget <= 0:
        print(f"error: --tune-budget ({args.tune_budget}) must be > 0",
              file=sys.stderr)
        return 1
    if args.crash_after is not None and not args.cluster:
        print("error: --crash-after needs --cluster", file=sys.stderr)
        return 1
    if args.bench_json is not None and not (
        args.cluster or args.fan_in or args.structure_churn
    ):
        print("error: --bench-json needs --cluster, --fan-in or "
              "--structure-churn",
              file=sys.stderr)
        return 1
    if args.structure_churn is not None:
        if args.structure_churn < 2:
            print(f"error: --structure-churn ({args.structure_churn}) must "
                  f"be >= 2 (at least one delta between serve rounds)",
                  file=sys.stderr)
            return 1
        if not 0.0 < args.churn_fraction <= 1.0:
            print(f"error: --churn-fraction ({args.churn_fraction}) must "
                  f"be in (0, 1]", file=sys.stderr)
            return 1
        if args.churn_nodes < 16:
            print(f"error: --churn-nodes ({args.churn_nodes}) must be "
                  f">= 16", file=sys.stderr)
            return 1
        for flag, on in (("--cluster", args.cluster),
                         ("--fan-in", args.fan_in is not None),
                         ("--value-churn", args.value_churn is not None),
                         ("--online", args.online)):
            if on:
                print(f"error: --structure-churn cannot be combined with "
                      f"{flag}", file=sys.stderr)
                return 1
    if args.fan_in is not None:
        if args.fan_in < 1:
            print(f"error: --fan-in ({args.fan_in}) must be >= 1",
                  file=sys.stderr)
            return 1
        for flag, on in (("--cluster", args.cluster),
                         ("--online", args.online),
                         ("--value-churn", args.value_churn is not None)):
            if on:
                print(f"error: --fan-in cannot be combined with {flag}",
                      file=sys.stderr)
                return 1
        if args.max_batch_rhs is not None and args.max_batch_rhs < 1:
            print(f"error: --max-batch-rhs ({args.max_batch_rhs}) must "
                  f"be >= 1", file=sys.stderr)
            return 1
        if args.batch_window < 0:
            print(f"error: --batch-window ({args.batch_window}) must "
                  f"be >= 0", file=sys.stderr)
            return 1
    if args.cluster and args.online:
        print(
            "error: --cluster cannot serve through OnlineSmat (each shard "
            "process would learn independently; online retraining is an "
            "in-process feature)",
            file=sys.stderr,
        )
        return 1
    if args.crash_after is not None and args.crash_after < 1:
        print(
            f"error: --crash-after ({args.crash_after}) must be >= 1",
            file=sys.stderr,
        )
        return 1
    if args.value_churn is not None and args.value_churn < 2:
        print(
            f"error: --value-churn ({args.value_churn}) must be >= 2 "
            f"(one base build plus at least one value update)",
            file=sys.stderr,
        )
        return 1
    if (
        args.value_churn is None
        and args.fan_in is None
        and args.requests < args.matrices
    ):
        print(
            f"error: --requests ({args.requests}) must be >= --matrices "
            f"({args.matrices}) so every matrix is requested at least once",
            file=sys.stderr,
        )
        return 1

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 1

    backend = _backend(args.platform)
    print(f"training tuner (scale {args.train_scale}, {args.platform})...")
    tuner = SMAT.train(
        generate_collection(
            seed=args.seed, scale=args.train_scale, size_scale=0.4
        ),
        backend=backend,
    )
    from dataclasses import replace as _dc_replace

    if args.tune_budget is not None:
        tuner.config = _dc_replace(
            tuner.config, tune_budget_units=args.tune_budget
        )
    if args.kernel_backend != "generic":
        # Let the tuner specialize during decide() (budget-charged); the
        # engine's own backend pass is then a no-op that just counts.
        tuner.config = _dc_replace(
            tuner.config, kernel_backend=args.kernel_backend
        )
    if args.online_retrain:
        # Force every cold decision through execute-and-measure so the
        # replay generates labelled records fast, and retrain after a
        # handful of them — the point is to observe a hot-swap, not to
        # win the benchmark.
        tuner.config = _dc_replace(tuner.config, confidence_threshold=1.0)
        tuner = OnlineSmat(
            tuner, retrain_every=max(2, args.matrices // 4)
        )
    elif args.online:
        tuner = OnlineSmat(tuner)

    if args.structure_churn is not None:
        return _serve_bench_structure_churn(args, tuner, faults)
    pool = build_matrix_pool(args.matrices, seed=args.seed)
    if args.fan_in is not None:
        return _serve_bench_fan_in(args, tuner, pool, faults)
    if args.value_churn is not None:
        pool = value_churn_pool(pool, args.value_churn, seed=args.seed)
        schedule = churn_schedule(
            args.matrices, args.value_churn, seed=args.seed
        )
    else:
        schedule = popularity_schedule(
            args.matrices, args.requests, seed=args.seed
        )
    if args.cluster:
        return _serve_bench_cluster(args, tuner, pool, schedule)
    config = ServeConfig(
        workers=args.workers,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        default_deadline=args.deadline,
        max_retries=args.max_retries,
        breaker_threshold=args.breaker_threshold,
        structure_cache=not args.no_structure_cache,
        kernel_backend=args.kernel_backend,
    )
    if args.value_churn is not None:
        print(
            f"replaying value churn: {args.matrices} structures x "
            f"{args.value_churn} value updates = {len(schedule)} requests "
            f"({args.clients} clients, {args.workers} workers, tier-2 "
            f"{'off' if args.no_structure_cache else 'on'}"
            + (f", {len(faults.rules)} fault rules" if faults else "")
            + ")..."
        )
    else:
        print(
            f"replaying {args.requests} requests over {args.matrices} "
            f"matrices ({args.clients} clients, {args.workers} workers"
            + (f", {len(faults.rules)} fault rules" if faults else "")
            + ")..."
        )
    tracer = None
    engine = ServingEngine(tuner, config, faults=faults)
    if args.trace is not None:
        from repro import obs

        tracer = obs.Tracer(sink=obs.metrics_sink(engine.metrics))
    with _maybe_installed(tracer):
        with engine:
            report = replay(
                engine, pool, schedule, clients=args.clients, seed=args.seed
            )
            scoreboard = engine.scoreboard()
            counters = engine.metrics.snapshot()["counters"]
    if tracer is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.report import overhead_report

        roots = tracer.roots()
        events = write_chrome_trace(roots, args.trace)
        print()
        print(overhead_report(roots).describe())
        print(f"wrote {events} trace events -> {args.trace}")

    print()
    print(scoreboard)
    print()
    print(f"served     : {report.requests} requests "
          f"in {report.wall_seconds:.2f}s "
          f"({report.throughput_rps:.0f} req/s)")
    print(f"cache hits : {report.cache_hit_rate:.1%} of requests")
    print(f"verified   : {report.requests - report.mismatches}/"
          f"{report.requests} products match the reference kernel")
    print(f"resilience : {counters['degraded_requests']} degraded, "
          f"{counters['retries']} retries, "
          f"{counters['deadline_exceeded']} deadline-expired")
    print(f"refreshes  : {int(counters['plans_refreshed'])} plans "
          f"value-refreshed "
          f"({int(counters['structure_hits'])} tier-2 structure hits, "
          f"{int(counters['plan_refresh_failures'])} failures)")
    if args.tune_budget is not None:
        print(f"cascade    : {int(counters['cascade_cheap_hits'])} cheap, "
              f"{int(counters['cascade_full_hits'])} full, "
              f"{int(counters['cascade_measure_decisions'])} measured, "
              f"{int(counters['cascade_floor_decisions'])} floored "
              f"(budget {args.tune_budget:g} CSR-SpMV units)")
    if args.kernel_backend != "generic":
        from repro.kernels import codegen_stats

        stats = codegen_stats()
        print(f"codegen    : {int(counters['codegen_kernels'])} plans on "
              f"generated kernels, "
              f"{int(counters['codegen_kept_generic'])} kept generic, "
              f"{int(counters['codegen_fallbacks'])} compile fallbacks "
              f"({stats['compiles']} compiles, {stats['cache_hits']} "
              f"cache hits)")
    if args.online:
        print(f"online     : {tuner.observations} fallback records, "
              f"{tuner.retrain_count} retrains")
    if args.online_retrain:
        swaps = int(counters["ruleset_swaps"])
        print(f"hot-swap   : {swaps} ruleset swaps observed by the "
              f"engine (model epoch {tuner.model_epoch})")
    if report.mismatches:
        print(f"error: {report.mismatches} product mismatches",
              file=sys.stderr)
        return 1
    if report.errors:
        # Under chaos replay failed requests are the experiment, not a
        # broken benchmark: report them and keep exit 0 so fault sweeps
        # can be scripted.  Without --faults any failure is a real error.
        print(f"{'note' if faults else 'error'}: {len(report.errors)} "
              f"requests failed ({report.errors[0]!r})",
              file=sys.stderr)
        if not faults:
            return 1
    if args.online_retrain:
        # The closed loop only counts as demonstrated if a retrain
        # actually produced a new ruleset AND the running engine served
        # at least one decision under it mid-replay.
        if tuner.retrain_count == 0:
            print("error: --online-retrain replay finished without a "
                  "successful retrain (no ruleset was ever produced)",
                  file=sys.stderr)
            return 1
        if int(counters["ruleset_swaps"]) == 0:
            print("error: --online-retrain replay finished without the "
                  "engine observing a ruleset hot-swap (retrained model "
                  "never reached a live decision)",
                  file=sys.stderr)
            return 1
    return 0


def _serve_bench_structure_churn(args, tuner, faults) -> int:
    """The --structure-churn arm of serve-bench: an evolving graph.

    One power-law graph streams through the engine while its edge set
    churns; every delta runs the plan-migration path (patch / refresh /
    retune) and every served product is verified against the current
    structure's reference kernel.  Exits non-zero unless at least one
    delta avoided a full retune — the scenario exists to prove the
    delta path works, so a replay that silently retuned everything is
    a failure, not a slow success.
    """
    from repro.serve import ServeConfig, ServingEngine, replay_structure_churn

    steps = args.structure_churn
    serves_per_step = max(1, args.requests // steps)
    config = ServeConfig(
        workers=args.workers,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        default_deadline=args.deadline,
        max_retries=args.max_retries,
        breaker_threshold=args.breaker_threshold,
        structure_cache=not args.no_structure_cache,
        kernel_backend=args.kernel_backend,
    )
    print(
        f"replaying structure churn: {args.churn_nodes}-node power-law "
        f"graph, {steps} steps x {serves_per_step} serves, "
        f"{args.churn_fraction:.1%} edge churn per step"
        + (f", {len(faults.rules)} fault rules" if faults else "")
        + "..."
    )
    tracer = None
    engine = ServingEngine(tuner, config, faults=faults)
    if args.trace is not None:
        from repro import obs

        tracer = obs.Tracer(sink=obs.metrics_sink(engine.metrics))
    with _maybe_installed(tracer):
        with engine:
            report = replay_structure_churn(
                engine,
                nodes=args.churn_nodes,
                steps=steps,
                serves_per_step=serves_per_step,
                delta_fraction=args.churn_fraction,
                seed=args.seed,
            )
            scoreboard = engine.scoreboard()
            counters = engine.metrics.snapshot()["counters"]
    if tracer is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.report import overhead_report

        roots = tracer.roots()
        events = write_chrome_trace(roots, args.trace)
        print()
        print(overhead_report(roots).describe())
        print(f"wrote {events} trace events -> {args.trace}")

    policies = report.policy_counts
    print()
    print(scoreboard)
    print()
    print(f"served     : {report.requests} requests "
          f"in {report.wall_seconds:.2f}s "
          f"({report.throughput_rps:.0f} req/s)")
    print(f"verified   : {report.requests - report.mismatches}/"
          f"{report.requests} products match the current structure")
    print(f"deltas     : {int(counters['deltas_applied'])} applied — "
          f"{policies['patch']} patched in place, "
          f"{policies['refresh']} operand-refreshed, "
          f"{policies['retune']} retuned")
    print(f"cache      : {int(counters['plans_invalidated'])} stale plans "
          f"invalidated, {int(counters['plans_cached'])} cached")

    if args.bench_json is not None:
        section = {
            "nodes": args.churn_nodes,
            "steps": steps,
            "serves_per_step": serves_per_step,
            "churn_fraction": args.churn_fraction,
            "requests": report.requests,
            "mismatches": report.mismatches,
            "failed_requests": len(report.errors),
            "deltas_applied": int(counters["deltas_applied"]),
            "delta_patches": policies["patch"],
            "delta_refreshes": policies["refresh"],
            "delta_retunes": policies["retune"],
            "plans_invalidated": int(counters["plans_invalidated"]),
            "throughput_rps": report.throughput_rps,
        }
        _merge_bench_json(args.bench_json, "structure_churn", section)
        print(f"wrote serve/structure_churn section -> {args.bench_json}")

    if report.mismatches:
        print(f"error: {report.mismatches} product mismatches",
              file=sys.stderr)
        return 1
    if report.errors:
        print(f"{'note' if faults else 'error'}: {len(report.errors)} "
              f"requests failed ({report.errors[0]!r})", file=sys.stderr)
        if not faults:
            return 1
    if not report.deltas:
        print("error: structure-churn replay applied zero deltas",
              file=sys.stderr)
        return 1
    if report.delta_hits == 0:
        print("error: every delta fell back to a full retune — the "
              "patch/refresh migration path never succeeded",
              file=sys.stderr)
        return 1
    return 0


def _serve_bench_fan_in(args, tuner, pool, faults) -> int:
    """The --fan-in arm of serve-bench: batched vs unbatched bursts.

    The same seeded burst workload is replayed twice through identically
    configured engines except for the batching knobs, so the throughput
    ratio isolates exactly what the SpMM fast path buys.
    """
    from repro.serve import ServeConfig, ServingEngine, replay_fan_in

    bursts = max(1, args.requests // args.fan_in)
    max_rhs = (
        args.max_batch_rhs if args.max_batch_rhs is not None else args.fan_in
    )

    def config(batched: bool) -> ServeConfig:
        return ServeConfig(
            workers=args.workers,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            default_deadline=args.deadline,
            max_retries=args.max_retries,
            breaker_threshold=args.breaker_threshold,
            structure_cache=not args.no_structure_cache,
            batch_window=args.batch_window if batched else 0.0,
            max_batch_rhs=max_rhs if batched else 1,
            kernel_backend=args.kernel_backend,
        )

    def run(batched: bool, tracer=None):
        engine = ServingEngine(tuner, config(batched), faults=faults)
        if tracer is not None:
            from repro import obs

            tracer.sink = obs.metrics_sink(engine.metrics)
        with _maybe_installed(tracer):
            with engine:
                report = replay_fan_in(
                    engine, pool, bursts, args.fan_in, seed=args.seed
                )
                counters = engine.metrics.snapshot()["counters"]
        return report, counters

    total = bursts * args.fan_in
    print(f"replaying {bursts} bursts x {args.fan_in} fan-in = {total} "
          f"requests over {len(pool)} matrices, unbatched "
          f"(max_batch_rhs 1)...")
    unbatched, _ = run(batched=False)
    print(f"unbatched  : {unbatched.requests} requests in "
          f"{unbatched.wall_seconds:.2f}s "
          f"({unbatched.throughput_rps:.0f} req/s)")

    tracer = None
    if args.trace is not None:
        from repro import obs

        tracer = obs.Tracer()
    print(f"replaying the same bursts batched (window "
          f"{args.batch_window}s, max_batch_rhs {max_rhs})...")
    batched, counters = run(batched=True, tracer=tracer)
    if tracer is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.report import overhead_report

        roots = tracer.roots()
        events = write_chrome_trace(roots, args.trace)
        print()
        print(overhead_report(roots).describe())
        print(f"wrote {events} trace events -> {args.trace}")

    batches = int(counters.get("spmm_batches_total", 0))
    batched_reqs = int(counters.get("spmm_requests_batched", 0))
    dropped = total - batched.requests - len(batched.errors)
    speedup = (
        batched.throughput_rps / unbatched.throughput_rps
        if unbatched.throughput_rps > 0
        else 0.0
    )

    print()
    print(f"batched    : {batched.requests} requests in "
          f"{batched.wall_seconds:.2f}s "
          f"({batched.throughput_rps:.0f} req/s)")
    print(f"verified   : {batched.requests - batched.mismatches}/"
          f"{batched.requests} products match the reference kernel")
    print(f"batching   : {batches} SpMM batches covering {batched_reqs} "
          f"requests "
          f"(mean width {batched_reqs / batches if batches else 0.0:.1f})")
    print(f"speedup    : {speedup:.2f}x throughput vs unbatched")

    if args.bench_json is not None:
        section = {
            "fan_in": args.fan_in,
            "bursts": bursts,
            "requests": total,
            "matrices": len(pool),
            "workers": args.workers,
            "batch_window": args.batch_window,
            "max_batch_rhs": max_rhs,
            "mismatches": batched.mismatches,
            "failed_requests": len(batched.errors),
            "dropped_requests": dropped,
            "spmm_batches_total": batches,
            "spmm_requests_batched": batched_reqs,
            "batched_throughput_rps": batched.throughput_rps,
            "unbatched_throughput_rps": unbatched.throughput_rps,
            "speedup_vs_unbatched": speedup,
        }
        _merge_bench_json(args.bench_json, "fan_in", section)
        print(f"wrote serve/fan_in section -> {args.bench_json}")

    if batched.mismatches:
        print(f"error: {batched.mismatches} product mismatches",
              file=sys.stderr)
        return 1
    if dropped:
        print(f"error: {dropped} requests dropped without a reply",
              file=sys.stderr)
        return 1
    if max_rhs > 1 and batches == 0:
        print("error: batching enabled but no SpMM batch was executed "
              "(spmm_batches_total == 0)", file=sys.stderr)
        return 1
    if batched.errors or unbatched.errors:
        errs = batched.errors or unbatched.errors
        print(f"{'note' if faults else 'error'}: {len(errs)} requests "
              f"failed ({errs[0]!r})", file=sys.stderr)
        if not faults:
            return 1
    return 0


def _serve_bench_cluster(args, tuner, pool, schedule) -> int:
    """The --cluster arm of serve-bench: replay against repro.cluster."""
    import os

    from repro.cluster import ClusterConfig, ClusterDispatcher, WorkerSpec
    from repro.serve import ServeConfig, replay

    cpu_count = os.cpu_count() or 1
    if cpu_count < 2 and args.workers > 1:
        # Shard processes time-slice one core: throughput numbers only
        # measure correctness parity, never a parallel speedup.
        print(
            f"warning: host has {cpu_count} cpu; {args.workers} shard "
            f"processes will time-slice it, so throughput figures are "
            f"parity-only (no parallel speedup is measurable)",
            file=sys.stderr,
        )

    spec = WorkerSpec(
        tuner=tuner,
        config=ServeConfig(
            workers=1,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            max_retries=args.max_retries,
            breaker_threshold=args.breaker_threshold,
            structure_cache=not args.no_structure_cache,
            # A plain string: codegen artifacts are regenerated worker-side
            # from structure, keeping the spec pickle descriptor-only.
            kernel_backend=args.kernel_backend,
        ),
        fault_specs=tuple(args.faults or ()),
        fault_seed=args.fault_seed,
        crash_after=args.crash_after,
    )

    def run(workers, tracer=None):
        cluster = ClusterDispatcher(
            spec,
            ClusterConfig(workers=workers, default_deadline=args.deadline),
        )
        if tracer is not None:
            from repro import obs

            tracer.sink = obs.metrics_sink(cluster.metrics)
        with _maybe_installed(tracer):
            with cluster:
                report = replay(
                    cluster, pool, schedule,
                    clients=args.clients, seed=args.seed,
                )
        # Scoreboard and merged worker metrics are read *after* stop():
        # the final cumulative snapshots arrive on WorkerExit.
        return cluster, report

    baseline = None
    if args.bench_json is not None and args.workers > 1:
        print(f"replaying {len(schedule)} requests on the 1-shard "
              f"baseline...")
        _, baseline = run(1)
        print(f"baseline   : {baseline.requests} requests in "
              f"{baseline.wall_seconds:.2f}s "
              f"({baseline.throughput_rps:.0f} req/s)")

    chaos = []
    if args.faults:
        chaos.append(f"{len(args.faults)} fault rules")
    if args.crash_after is not None:
        chaos.append(f"crash-after {args.crash_after}")
    if args.deadline is not None:
        chaos.append(f"deadline {args.deadline}s")
    print(
        f"replaying {len(schedule)} requests over {len(pool)} matrices "
        f"({args.clients} clients, {args.workers} shard processes"
        + (", " + ", ".join(chaos) if chaos else "")
        + ")..."
    )
    tracer = None
    if args.trace is not None:
        from repro import obs

        tracer = obs.Tracer()
    cluster, report = run(args.workers, tracer=tracer)
    if tracer is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.report import overhead_report

        roots = tracer.roots()
        events = write_chrome_trace(roots, args.trace)
        print()
        print(overhead_report(roots).describe())
        print(f"wrote {events} trace events -> {args.trace}")

    counters = cluster.metrics.snapshot()["counters"]
    merged = cluster.worker_metrics() or {}
    worker_counters = merged.get("counters", {})
    pickled = int(counters["operand_bytes_pickled"])
    dropped = len(schedule) - report.requests - len(report.errors)

    print()
    print(cluster.scoreboard())
    print()
    print(f"served     : {report.requests} requests "
          f"in {report.wall_seconds:.2f}s "
          f"({report.throughput_rps:.0f} req/s)")
    print(f"cache hits : {report.cache_hit_rate:.1%} of requests")
    print(f"verified   : {report.requests - report.mismatches}/"
          f"{report.requests} products match the reference kernel")
    print(f"zero-copy  : {pickled} operand bytes pickled on the hot path")
    print(f"repair     : {int(counters['worker_crashes'])} crashes, "
          f"{int(counters['workers_respawned'])} respawns, "
          f"{int(counters['redispatches'])} re-dispatches, "
          f"{int(counters['plans_rewarmed'])} plans re-warmed")
    print(f"resilience : {int(counters['degraded_local'])} degraded "
          f"locally, "
          f"{int(worker_counters.get('degraded_requests', 0))} degraded "
          f"in shard, "
          f"{int(worker_counters.get('retries', 0))} retries, "
          f"{int(worker_counters.get('deadline_exceeded', 0))} "
          f"deadline-expired")
    print(f"dropped    : {dropped} requests")
    if baseline is not None and baseline.throughput_rps > 0:
        print(f"speedup    : {report.throughput_rps / baseline.throughput_rps:.2f}x "
              f"throughput vs 1 shard "
              f"(host has {os.cpu_count() or 1} cpu)")

    if args.bench_json is not None:
        section = {
            "workers": args.workers,
            "clients": args.clients,
            "requests": len(schedule),
            "matrices": len(pool),
            "wall_seconds": report.wall_seconds,
            "throughput_rps": report.throughput_rps,
            "cache_hit_rate": report.cache_hit_rate,
            "mismatches": report.mismatches,
            "failed_requests": len(report.errors),
            "dropped_requests": dropped,
            "operand_bytes_pickled": pickled,
            "plans_published": int(counters["plans_published"]),
            "worker_crashes": int(counters["worker_crashes"]),
            "workers_respawned": int(counters["workers_respawned"]),
            "redispatches": int(counters["redispatches"]),
            "plans_rewarmed": int(counters["plans_rewarmed"]),
            "degraded_local": int(counters["degraded_local"]),
            "chaos": {
                "faults": list(args.faults or []),
                "crash_after": args.crash_after,
                "deadline": args.deadline,
            },
            "cpu_count": cpu_count,
            "parity_only": cpu_count < 2,
        }
        if baseline is not None:
            section["baseline_1_worker"] = {
                "wall_seconds": baseline.wall_seconds,
                "throughput_rps": baseline.throughput_rps,
            }
            section["speedup_vs_1_worker"] = (
                report.throughput_rps / baseline.throughput_rps
                if baseline.throughput_rps > 0
                else 0.0
            )
        elif args.workers == 1:
            section["speedup_vs_1_worker"] = 1.0
        _merge_bench_json(args.bench_json, "sharded", section)
        print(f"wrote serve/sharded section -> {args.bench_json}")

    if report.mismatches:
        print(f"error: {report.mismatches} product mismatches",
              file=sys.stderr)
        return 1
    if pickled:
        print(f"error: zero-copy invariant violated "
              f"({pickled} operand bytes pickled)", file=sys.stderr)
        return 1
    if dropped:
        print(f"error: {dropped} requests dropped without a reply",
              file=sys.stderr)
        return 1
    if report.errors:
        # Same contract as the in-process path: under injected chaos
        # (faults, crashes, deadlines) failed requests are the
        # experiment; without chaos any failure is a real error.
        print(f"{'note' if chaos else 'error'}: {len(report.errors)} "
              f"requests failed ({report.errors[0]!r})",
              file=sys.stderr)
        if not chaos:
            return 1
    return 0


def _merge_bench_json(path: Path, name: str, section: dict) -> None:
    """Set ``serve.<name>`` in the JSON report at ``path``, creating or
    preserving whatever else (the bench-perf ops, other serve sections)
    is already there."""
    import json

    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (ValueError, OSError):
            loaded = None
        if isinstance(loaded, dict):
            data = loaded
    serve = data.setdefault("serve", {})
    if not isinstance(serve, dict):
        serve = data["serve"] = {}
    serve[name] = section
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _maybe_installed(tracer):
    """``obs.installed(tracer)`` or a no-op when tracing is off."""
    import contextlib

    if tracer is None:
        return contextlib.nullcontext()
    from repro import obs

    return obs.installed(tracer)


def _cmd_trace(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import obs
    from repro.collection import generate_collection
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.report import overhead_report, render_tree
    from repro.serve import ServingEngine
    from repro.tuner import SMAT

    demo_kinds = ("banded", "uniform", "powerlaw", "random")
    if args.matrix in demo_kinds:
        matrix = _demo_matrix(args.matrix)
        source = f"demo:{args.matrix}"
    else:
        from repro.io import read_matrix_market

        path = Path(args.matrix)
        if not path.exists():
            print(
                f"error: {args.matrix!r} is neither a file nor one of "
                f"{', '.join(demo_kinds)}",
                file=sys.stderr,
            )
            return 1
        matrix = read_matrix_market(path)
        source = str(path)
    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return 1

    backend = _backend(args.platform)
    print(f"training tuner (scale {args.train_scale}, {args.platform})...")
    tuner = SMAT.train(
        generate_collection(
            seed=args.seed, scale=args.train_scale, size_scale=0.4
        ),
        backend=backend,
    )

    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal(matrix.n_cols)
    tracer = obs.Tracer()
    with obs.installed(tracer):
        with ServingEngine(tuner) as engine:
            tracer.sink = obs.metrics_sink(engine.metrics)
            for _ in range(args.requests):
                engine.spmv(matrix, x)
    roots = tracer.roots()

    print(f"\ntraced {len(roots)} request(s) for {source} "
          f"({matrix.n_rows}x{matrix.n_cols}, {matrix.nnz} nnz)\n")
    for root in roots:
        print(render_tree(root))
        print()
    print(overhead_report(roots).describe())
    if args.out is not None:
        events = write_chrome_trace(roots, args.out)
        print(f"wrote {events} trace events -> {args.out}")
    if args.jsonl is not None:
        lines = write_jsonl(roots, args.jsonl)
        print(f"wrote {lines} spans -> {args.jsonl}")
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from repro import perfbench

    if args.quick and args.suite not in (None, "quick"):
        print("error: --quick conflicts with --suite "
              f"{args.suite}", file=sys.stderr)
        return 1
    suite = "quick" if args.quick else (args.suite or "full")
    report = perfbench.run_suite(
        suite,
        repeats=args.repeats,
        workers=args.workers,
        seed=args.seed,
        kernel_backend=args.kernel_backend,
    )
    print(perfbench.format_report(report))
    perfbench.write_report(report, args.out)
    print(f"wrote {args.out}")
    if args.assert_speedup is not None:
        failures = perfbench.check_speedups(report, args.assert_speedup)
        if failures:
            for failure in failures:
                print(f"error: {failure}", file=sys.stderr)
            return 1
        spmm_gates = ", ".join(
            f"{name} >= {floor:.1f}x"
            for name, floor in perfbench.SPMM_GATES.items()
        )
        print(f"speedup gate passed (>= {args.assert_speedup:.1f}x on "
              + ", ".join(perfbench.GATED_OPS)
              + f"; {spmm_gates} vs sequential SpMV; codegen >= "
              + f"{perfbench.CODEGEN_SPEEDUP_FLOOR:.1f}x on >= "
              + f"{perfbench.CODEGEN_MIN_FAMILIES} families)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
