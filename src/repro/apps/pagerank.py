"""PageRank on a tuned SpMV backend.

Section 1 motivates SMAT with "large-scale graph analysis applications like
PageRank" whose core is repeated SpMV over a power-law adjacency matrix —
the COO sweet spot.  The power iteration runs on either a plain CSR matrix
or an SMAT-prepared operator, so the graph example can show the tuner
switching formats on a real workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.formats.csr import CSRMatrix
from repro.formats.ops import transpose
from repro.types import INDEX_DTYPE


@dataclass
class PageRankResult:
    """Converged ranks plus iteration metadata."""

    ranks: np.ndarray
    iterations: int
    converged: bool
    deltas: List[float]


def pagerank(
    adjacency: CSRMatrix,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    spmv: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> PageRankResult:
    """Power-iteration PageRank over a (row = source) adjacency matrix.

    ``spmv`` overrides the product with the *transition-transpose* matrix
    ``M = (D^-1 A)^T`` — pass an SMAT-prepared operator for the tuned run.
    When omitted, the reference CSR kernel is used.
    """
    if adjacency.n_rows != adjacency.n_cols:
        raise SolverError(
            f"PageRank needs a square adjacency, got {adjacency.shape}"
        )
    if not 0.0 < damping < 1.0:
        raise SolverError(f"damping must be in (0, 1), got {damping}")
    n = adjacency.n_rows

    transition_t = build_transition_transpose(adjacency)
    product = spmv if spmv is not None else transition_t.spmv

    out_degree = adjacency.row_degrees()
    dangling = out_degree == 0

    ranks = np.full(n, 1.0 / n)
    deltas: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dangling_mass = float(ranks[dangling].sum())
        new_ranks = (
            damping * (product(ranks) + dangling_mass / n)
            + (1.0 - damping) / n
        )
        delta = float(np.abs(new_ranks - ranks).sum())
        deltas.append(delta)
        ranks = new_ranks
        if delta < tol:
            converged = True
            break
    return PageRankResult(
        ranks=ranks, iterations=iterations, converged=converged,
        deltas=deltas,
    )


def build_transition_transpose(adjacency: CSRMatrix) -> CSRMatrix:
    """``(D^-1 A)^T``: the matrix the power iteration multiplies by.

    Row-normalises the adjacency by out-degree (dangling rows stay zero —
    the iteration redistributes their mass explicitly) and transposes, so
    ``M @ ranks`` pushes rank along edges.
    """
    degrees = adjacency.row_degrees()
    row_sums = np.zeros(adjacency.n_rows, dtype=np.float64)
    rows = np.repeat(
        np.arange(adjacency.n_rows, dtype=INDEX_DTYPE), degrees
    )
    np.add.at(row_sums, rows, adjacency.data)
    inv_degree = np.zeros(adjacency.n_rows, dtype=adjacency.dtype)
    nonzero = row_sums != 0
    inv_degree[nonzero] = 1.0 / row_sums[nonzero]
    scaled_data = adjacency.data * np.repeat(inv_degree, degrees)
    scaled = CSRMatrix(
        adjacency.ptr.copy(),
        adjacency.indices.copy(),
        scaled_data,
        adjacency.shape,
    )
    return transpose(scaled)
