"""HITS (hubs and authorities) on a tuned SpMV backend.

The paper's introduction names HITS alongside PageRank as the
data-intensive workloads whose core is SpMV over graph adjacency
matrices.  HITS alternates two products per iteration — ``a = A^T h`` and
``h = A a`` — so it exercises *both* the matrix and its transpose, each of
which SMAT may store in a different format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.formats.csr import CSRMatrix
from repro.formats.ops import transpose


@dataclass
class HITSResult:
    """Converged hub and authority scores plus iteration metadata."""

    hubs: np.ndarray
    authorities: np.ndarray
    iterations: int
    converged: bool
    deltas: List[float]


def hits(
    adjacency: CSRMatrix,
    tol: float = 1e-10,
    max_iterations: int = 200,
    spmv: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    spmv_t: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> HITSResult:
    """Run the HITS power iteration on a (row = source) adjacency matrix.

    ``spmv`` applies ``A``, ``spmv_t`` applies ``A^T``; pass SMAT-prepared
    operators for the tuned run (they may use different formats).  Scores
    are L2-normalised each round; convergence is measured on the combined
    hub+authority change.
    """
    if adjacency.n_rows != adjacency.n_cols:
        raise SolverError(
            f"HITS needs a square adjacency, got {adjacency.shape}"
        )
    n = adjacency.n_rows
    apply_a = spmv if spmv is not None else adjacency.spmv
    if spmv_t is None:
        a_t = transpose(adjacency)
        apply_at = a_t.spmv
    else:
        apply_at = spmv_t

    hubs = np.full(n, 1.0 / np.sqrt(n))
    authorities = np.full(n, 1.0 / np.sqrt(n))
    deltas: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_auth = apply_at(hubs)
        new_auth = _normalise(new_auth)
        new_hubs = apply_a(new_auth)
        new_hubs = _normalise(new_hubs)
        delta = float(
            np.abs(new_hubs - hubs).sum() + np.abs(new_auth - authorities).sum()
        )
        deltas.append(delta)
        hubs, authorities = new_hubs, new_auth
        if delta < tol:
            converged = True
            break
    return HITSResult(
        hubs=hubs,
        authorities=authorities,
        iterations=iterations,
        converged=converged,
        deltas=deltas,
    )


def _normalise(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector
    return vector / norm
