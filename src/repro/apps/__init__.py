"""Application workloads built on the tuned SpMV (the intro's motivation)."""

from repro.apps.hits import HITSResult, hits
from repro.apps.pagerank import PageRankResult, pagerank

__all__ = ["HITSResult", "PageRankResult", "hits", "pagerank"]
