"""Brute-force search baseline (Section 7.3's overhead comparison).

"As a straightforward way to search for the optimal result, one option is
to run SpMV kernels for all formats one by one" — paying full conversion
plus execution cost for every candidate.  The paper charges this simple
search ~45 CSR-SpMVs against SMAT's ~2-16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConversionError
from repro.features.extract import extract_features
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import find_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine.measure import MeasurementBackend
from repro.types import BASIC_FORMATS, FormatName

_STRATEGIES = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome and cost accounting of the exhaustive search."""

    best_format: FormatName
    times: Dict[FormatName, float]
    #: Total search cost in CSR-SpMV units (conversion + execution).
    overhead_units: float


def brute_force_search(
    matrix: CSRMatrix,
    backend: MeasurementBackend,
    repeats: int = 1,
    formats: Tuple[FormatName, ...] = BASIC_FORMATS,
) -> BruteForceResult:
    """Convert to every format, run each, keep the fastest.

    ``repeats`` mirrors how many timed executions the search spends per
    candidate.  Conversion blow-ups (e.g. a power-law matrix to DIA) are
    still *attempted* — that is the point of the baseline — but capped at a
    generous fill budget so the search terminates.
    """
    features = extract_features(matrix)
    csr_unit = backend.measure(
        find_kernel(FormatName.CSR, _STRATEGIES), matrix, features
    )

    times: Dict[FormatName, float] = {}
    overhead = 0.0
    for fmt in formats:
        try:
            converted, cost = convert(matrix, fmt, fill_budget=100.0)
        except ConversionError:
            continue
        overhead += cost.csr_spmv_units()
        kernel = find_kernel(fmt, _STRATEGIES)
        seconds = backend.measure(kernel, converted, features)
        times[fmt] = seconds
        overhead += repeats * seconds / csr_unit

    best = min(times, key=lambda f: times[f])
    return BruteForceResult(
        best_format=best, times=times, overhead_units=overhead
    )
