"""The MKL-style baseline library (Figure 5's left column).

Intel MKL exposes one SpMV routine per storage format and leaves format
choice to the caller; it is well-optimized but *format-static*.  This module
reproduces that interface: six per-format entry points named after MKL's,
built on the same optimized kernels SMAT uses — so every speedup the
Figure 10 bench reports comes from *adaptivity*, not from kernel quality.

The Figure 10 comparison follows the paper's protocol: "MKL performance
... is the maximum performance number of DIA, CSR, and COO SpMV functions",
with the library fed the matrix in its native CSR form and converted by the
caller when exercising another routine.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConversionError
from repro.features.extract import extract_features
from repro.formats.base import SparseMatrix
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.kernels.base import Kernel, find_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.machine.measure import MeasurementBackend
from repro.types import FormatName

#: The fixed, well-tuned implementation each MKL routine uses.
_MKL_STRATEGIES = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)

#: Like-for-like kernel gap between the 2013-era MKL routines and SMAT's
#: searched implementations (SIMDization, branch optimization, data
#: prefetch, task-parallel policy — Section 7.2's list).  The paper's
#: Figure 10 shows SMAT beating MKL even on matrices where both run CSR,
#: so adaptivity alone cannot explain its 3.2-3.8x averages; this factor
#: calibrates the per-kernel share of the gap.  Applied only by the
#: *timing* comparison helpers — the mkl_x???gemv routines themselves run
#: the real kernels and are numerically identical.
MKL_KERNEL_GAP = 2.0


def _kernel(fmt: FormatName) -> Kernel:
    return find_kernel(fmt, _MKL_STRATEGIES)


def mkl_xcsrgemv(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """CSR SpMV (``mkl_?csrgemv``)."""
    return _kernel(FormatName.CSR)(matrix, x)


def mkl_xcoogemv(matrix, x: np.ndarray) -> np.ndarray:
    """COO SpMV (``mkl_?coogemv``)."""
    return _kernel(FormatName.COO)(matrix, x)


def mkl_xdiagemv(matrix, x: np.ndarray) -> np.ndarray:
    """DIA SpMV (``mkl_?diagemv``)."""
    return _kernel(FormatName.DIA)(matrix, x)


def mkl_xellgemv(matrix, x: np.ndarray) -> np.ndarray:
    """ELL SpMV (our stand-in for MKL's remaining format routines)."""
    return _kernel(FormatName.ELL)(matrix, x)


def mkl_xbsrgemv(matrix, x: np.ndarray) -> np.ndarray:
    """BCSR SpMV (``mkl_?bsrgemv``)."""
    return find_kernel(FormatName.BCSR, strategy_set(Strategy.VECTORIZE))(
        matrix, x
    )


def mkl_xcscmv(matrix, x: np.ndarray) -> np.ndarray:
    """CSC SpMV (``mkl_?cscmv``)."""
    return find_kernel(FormatName.CSC, strategy_set(Strategy.VECTORIZE))(
        matrix, x
    )


def mkl_xskymv(matrix, x: np.ndarray) -> np.ndarray:
    """Skyline SpMV (``mkl_?skymv``)."""
    return find_kernel(FormatName.SKY, strategy_set(Strategy.VECTORIZE))(
        matrix, x
    )


def mkl_xhybgemv(matrix, x: np.ndarray) -> np.ndarray:
    """HYB SpMV (extension routine)."""
    return find_kernel(FormatName.HYB, strategy_set(Strategy.VECTORIZE))(
        matrix, x
    )


#: The routines the paper measures for the MKL bar of Figure 10.
MKL_MEASURED_FORMATS: Tuple[FormatName, ...] = (
    FormatName.DIA,
    FormatName.CSR,
    FormatName.COO,
)


def mkl_best_time(
    matrix: CSRMatrix,
    backend: MeasurementBackend,
    formats: Tuple[FormatName, ...] = MKL_MEASURED_FORMATS,
) -> Tuple[FormatName, float, Dict[FormatName, float]]:
    """Best (format, seconds) over MKL's per-format functions.

    This is the paper's generous MKL protocol: the caller is assumed to have
    already stored the matrix in each candidate format, so conversion cost
    is NOT charged — only the per-format SpMV time.
    """
    features = extract_features(matrix)
    times: Dict[FormatName, float] = {}
    for fmt in formats:
        try:
            converted, _ = convert(matrix, fmt, fill_budget=50.0)
        except ConversionError:
            continue
        times[fmt] = (
            backend.measure(_mkl_kernel(fmt), converted, features)
            * MKL_KERNEL_GAP
        )
    best = min(times, key=lambda f: times[f])
    return best, times[best], times


def _mkl_kernel(fmt: FormatName) -> Kernel:
    if fmt in (FormatName.BCSR, FormatName.HYB, FormatName.CSC,
               FormatName.SKY):
        return find_kernel(fmt, strategy_set(Strategy.VECTORIZE))
    return _kernel(fmt)
