"""Comparator systems: MKL-style library, brute-force search, clSpMV-style."""

from repro.baselines.brute_force import BruteForceResult, brute_force_search
from repro.baselines.clspmv_like import ClSpmvModel, train_clspmv
from repro.baselines.mkl_like import (
    MKL_KERNEL_GAP,
    MKL_MEASURED_FORMATS,
    mkl_best_time,
    mkl_xbsrgemv,
    mkl_xcoogemv,
    mkl_xcscmv,
    mkl_xcsrgemv,
    mkl_xdiagemv,
    mkl_xellgemv,
    mkl_xskymv,
)

__all__ = [
    "BruteForceResult",
    "ClSpmvModel",
    "MKL_KERNEL_GAP",
    "MKL_MEASURED_FORMATS",
    "brute_force_search",
    "mkl_best_time",
    "mkl_xbsrgemv",
    "mkl_xcoogemv",
    "mkl_xcscmv",
    "mkl_xcsrgemv",
    "mkl_xdiagemv",
    "mkl_xellgemv",
    "mkl_xskymv",
    "train_clspmv",
]
