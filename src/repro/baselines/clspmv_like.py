"""clSpMV-style baseline (Section 8's "Prediction Model" comparison).

clSpMV decides the format using *offline maximum GFLOPS per format*: in the
online stage it estimates each format's performance from the best number
that format ever achieved during offline benchmarking, rather than from the
input matrix's own features.  The paper argues this is "not representative
enough" — a format's ceiling says little about how it treats *this* matrix.
Reproducing the baseline lets the ablation bench quantify that argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.features.extract import extract_features
from repro.features.parameters import FeatureVector
from repro.formats.csr import CSRMatrix
from repro.machine.measure import MeasurementBackend, gflops
from repro.tuner.search import KernelSearchResult
from repro.types import BASIC_FORMATS, FormatName


@dataclass
class ClSpmvModel:
    """Offline max-GFLOPS table plus the format ceilings decision rule."""

    max_gflops: Dict[FormatName, float]

    def predict(self, features: FeatureVector) -> FormatName:
        """Pick the format with the best *offline ceiling*, discounted by
        the matrix's storage blow-up (clSpMV's only input sensitivity)."""
        scores: Dict[FormatName, float] = {}
        for fmt, ceiling in self.max_gflops.items():
            efficiency = 1.0
            if fmt is FormatName.DIA:
                efficiency = features.er_dia
            elif fmt is FormatName.ELL:
                efficiency = features.er_ell
            scores[fmt] = ceiling * efficiency
        return max(scores, key=lambda f: (scores[f], f.value))


def train_clspmv(
    collection: Iterable,
    kernels: KernelSearchResult,
    backend: MeasurementBackend,
    formats: Tuple[FormatName, ...] = BASIC_FORMATS,
) -> ClSpmvModel:
    """Offline stage: record the maximum GFLOPS each format reaches."""
    ceilings = {fmt: 0.0 for fmt in formats}
    for _, matrix in collection:
        features = extract_features(matrix)
        for fmt in formats:
            seconds = backend.measure(
                kernels.kernel_for(fmt), None, features
            )
            ceilings[fmt] = max(
                ceilings[fmt], gflops(features.nnz, seconds)
            )
    return ClSpmvModel(max_gflops=ceilings)
