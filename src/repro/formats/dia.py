"""DIA (Diagonal) format — the fastest format for banded matrices.

Layout (Figure 2c): ``offsets[i]`` is the offset of diagonal ``i`` relative
to the principal diagonal (negative = below), and ``data`` is a dense
``(num_diags, stride)`` array with ``stride = n_rows``; ``data[i, r]`` holds
the element at logical position ``(r, r + offsets[i])``, zero-filled where the
diagonal leaves the matrix or the element is absent.

DIA wins when diagonals are dense ("true diagonals"): X-vector access is
contiguous and no column indices are stored at all.  It loses exactly as the
paper describes — sparse diagonals mean wasted multiply-adds on padding,
captured by the ``ER_DIA`` and ``NTdiags_ratio`` features.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName
from repro.util.validation import check_1d


@register_format(FormatName.DIA)
class DIAMatrix(SparseMatrix):
    """Diagonal-major sparse matrix."""

    def __init__(
        self,
        offsets: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        data = np.asarray(data)
        super().__init__(shape, data.dtype)
        offsets = check_1d("offsets", np.asarray(offsets, dtype=INDEX_DTYPE))
        if data.ndim != 2:
            raise FormatError(f"DIA data must be 2-D, got shape {data.shape}")
        if data.shape[0] != offsets.shape[0]:
            raise FormatError(
                f"data has {data.shape[0]} diagonals but offsets has "
                f"{offsets.shape[0]}"
            )
        if data.shape[1] != self.n_rows:
            raise FormatError(
                f"DIA stride must equal n_rows={self.n_rows}, "
                f"got {data.shape[1]}"
            )
        if offsets.size and np.any(np.diff(offsets) <= 0):
            order = np.argsort(offsets)
            offsets, data = offsets[order], data[order]
        lo, hi = -self.n_rows + 1, self.n_cols - 1
        if offsets.size and (offsets[0] < lo or offsets[-1] > hi):
            raise FormatError(
                f"diagonal offsets must lie in [{lo}, {hi}], "
                f"got [{offsets[0]}, {offsets[-1]}]"
            )
        self.offsets = offsets
        self.data = data

    @classmethod
    def _from_validated(
        cls,
        offsets: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "DIAMatrix":
        """Internal: adopt an already-canonical diagonal store unchecked.

        Only the delta-patch path uses this — ``offsets`` is a copy of an
        existing validated operand's (already sorted, already in range)
        and ``data`` differs from its store at the touched coordinates
        only, so re-running the constructor's checks would be pure
        overhead on what is meant to be an O(delta) operation.
        """
        out = cls.__new__(cls)
        SparseMatrix.__init__(out, shape, data.dtype)
        out.offsets = offsets
        out.data = data
        return out

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DIAMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise FormatError(f"dense matrix must be 2-D, got {dense.ndim}-D")
        n_rows, n_cols = dense.shape
        rows, cols = np.nonzero(dense)
        offsets = np.unique(cols - rows)
        data = np.zeros((offsets.shape[0], n_rows), dtype=dense.dtype)
        for i, k in enumerate(offsets):
            r_start = max(0, -int(k))
            r_end = min(n_rows, n_cols - int(k))
            rr = np.arange(r_start, r_end)
            data[i, rr] = dense[rr, rr + int(k)]
        return cls(offsets.astype(INDEX_DTYPE), data, dense.shape)

    def _refresh_values(self, csr) -> "DIAMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            row_of = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
            )
            diag_slot = np.searchsorted(self.offsets, csr.indices - row_of)
            plan = (diag_slot, row_of)
            self._refresh_plan = plan
        diag_slot, row_of = plan
        if row_of.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure scatters {row_of.shape[0]}"
            )
        data = np.zeros_like(self.data)
        data[diag_slot, row_of] = csr.data
        out = DIAMatrix(self.offsets, data, self.shape)
        out._refresh_plan = plan
        return out

    @property
    def num_diags(self) -> int:
        """Number of stored diagonals (the paper's Ndiags)."""
        return int(self.offsets.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def padded_size(self) -> int:
        """Total stored slots including zero padding (num_diags * n_rows)."""
        return int(self.data.size)

    def fill_ratio(self) -> float:
        """Fraction of stored slots that hold real non-zeros (ER_DIA)."""
        if self.padded_size == 0:
            return 1.0
        return self.nnz / self.padded_size

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        for i, k in enumerate(self.offsets):
            k = int(k)
            r_start = max(0, -k)
            r_end = min(self.n_rows, self.n_cols - k)
            rr = np.arange(r_start, r_end)
            dense[rr, rr + k] = self.data[i, rr]
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference diagonal-loop SpMV (Figure 2c).

        Note the traversal multiplies padding zeros too — exactly the
        "useless computation on zero elements" the paper charges DIA with.
        """
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for i in range(self.num_diags):
            k = int(self.offsets[i])
            i_start = max(0, -k)
            j_start = max(0, k)
            n = min(self.n_rows - i_start, self.n_cols - j_start)
            if n <= 0:
                continue
            y[i_start : i_start + n] += (
                self.data[i, i_start : i_start + n] * x[j_start : j_start + n]
            )
        return y

    def memory_bytes(self) -> int:
        return int(self.offsets.nbytes + self.data.nbytes)
