"""Loop-based reference implementations of the cold-path conversions.

The converters in :mod:`repro.formats.convert` are loop-free NumPy index
arithmetic; these are the per-row/per-element Python loops they replaced,
retained deliberately as

* **correctness oracles** — the property tests assert the vectorized
  converters produce bitwise-identical ``ptr``/``indices``/``data`` arrays
  and identical :class:`~repro.formats.convert.ConversionCost` accounting
  against these, and
* **benchmark baselines** — ``repro bench-perf`` reports every vectorized
  operation's speedup over its retained loop reference (the
  ``speedup_vs_python_loop`` column of ``BENCH_perf.json``).

Each function mirrors its vectorized twin's signature, fill-budget guard
and ``touched_slots`` formula exactly; only the traversal differs.  None
of them tick the conversion/extraction event meters — oracles must not
perturb the serving layer's bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConversionError, FormatError
from repro.formats.bcsr import BCSRMatrix
from repro.formats.convert import DEFAULT_FILL_BUDGET, ConversionCost
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.sky import SKYMatrix
from repro.types import INDEX_DTYPE, FormatName


def csr_to_ell_loop(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[ELLMatrix, ConversionCost]:
    """Per-row packing loop (the pre-vectorization ``csr_to_ell``)."""
    degrees = matrix.row_degrees()
    max_rd = int(degrees.max()) if matrix.n_rows and matrix.nnz else 0
    padded = max_rd * matrix.n_rows
    if fill_budget is not None and matrix.nnz and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->ELL would allocate {padded} slots for {matrix.nnz} "
            f"non-zeros ({padded / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    indices = np.zeros((max_rd, matrix.n_rows), dtype=INDEX_DTYPE)
    data = np.zeros((max_rd, matrix.n_rows), dtype=matrix.dtype)
    for i in range(matrix.n_rows):
        start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
        for slot, jj in enumerate(range(start, end)):
            indices[slot, i] = matrix.indices[jj]
            data[slot, i] = matrix.data[jj]
    ell = ELLMatrix(indices, data, matrix.shape, matrix.nnz)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.ELL,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + 2 * padded,
    )
    return ell, cost


def csr_to_dia_loop(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[DIAMatrix, ConversionCost]:
    """Per-element diagonal scatter loop (the pre-vectorization path)."""
    seen = set()
    for i in range(matrix.n_rows):
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            seen.add(int(matrix.indices[jj]) - i)
    offsets = np.asarray(sorted(seen), dtype=INDEX_DTYPE)
    num_diags = int(offsets.shape[0])
    padded = num_diags * matrix.n_rows
    if fill_budget is not None and matrix.nnz and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->DIA would allocate {padded} slots for {matrix.nnz} "
            f"non-zeros ({padded / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    slot_of = {int(k): s for s, k in enumerate(offsets)}
    data = np.zeros((max(num_diags, 0), matrix.n_rows), dtype=matrix.dtype)
    for i in range(matrix.n_rows):
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            k = int(matrix.indices[jj]) - i
            data[slot_of[k], i] = matrix.data[jj]
    dia = DIAMatrix(offsets, data, matrix.shape)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.DIA,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + padded,
    )
    return dia, cost


def csr_to_bcsr_loop(
    matrix: CSRMatrix,
    block_shape: Tuple[int, int] = (2, 2),
    fill_budget: Optional[float] = DEFAULT_FILL_BUDGET,
) -> Tuple[BCSRMatrix, ConversionCost]:
    """Per-element block-tiling loop (the pre-vectorization path)."""
    r, c = int(block_shape[0]), int(block_shape[1])
    if r <= 0 or c <= 0:
        raise FormatError(f"block dims must be positive, got {block_shape}")
    n_block_rows = -(-matrix.n_rows // r)
    if matrix.nnz == 0:
        empty = BCSRMatrix(
            np.zeros(n_block_rows + 1, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros((0, r, c), dtype=matrix.dtype),
            matrix.shape,
            0,
        )
        return empty, ConversionCost(FormatName.CSR, FormatName.BCSR, 0, 0)

    n_block_cols = -(-matrix.n_cols // c)
    keys = set()
    for i in range(matrix.n_rows):
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            keys.add((i // r) * n_block_cols + int(matrix.indices[jj]) // c)
    sorted_keys = sorted(keys)
    n_blocks = len(sorted_keys)
    padded = n_blocks * r * c
    if fill_budget is not None and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->BCSR{block_shape} would allocate {padded} slots for "
            f"{matrix.nnz} non-zeros; refusing"
        )
    block_of = {key: b for b, key in enumerate(sorted_keys)}
    blocks = np.zeros((n_blocks, r, c), dtype=matrix.dtype)
    for i in range(matrix.n_rows):
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            j = int(matrix.indices[jj])
            b = block_of[(i // r) * n_block_cols + j // c]
            blocks[b, i % r, j % c] = matrix.data[jj]

    block_rows = [key // n_block_cols for key in sorted_keys]
    block_cols = np.asarray(
        [key % n_block_cols for key in sorted_keys], dtype=INDEX_DTYPE
    )
    block_ptr = np.zeros(n_block_rows + 1, dtype=INDEX_DTYPE)
    for brow in block_rows:
        block_ptr[brow + 1] += 1
    np.cumsum(block_ptr, out=block_ptr)

    bcsr = BCSRMatrix(block_ptr, block_cols, blocks, matrix.shape, matrix.nnz)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.BCSR,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + padded,
    )
    return bcsr, cost


def csr_to_sky_loop(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[SKYMatrix, ConversionCost]:
    """Per-row profile-packing loop (the pre-vectorization path)."""
    if matrix.n_rows != matrix.n_cols:
        raise ConversionError(
            f"skyline needs a square matrix, got {matrix.shape}"
        )
    n = matrix.n_rows
    pointers = np.zeros(n + 1, dtype=INDEX_DTYPE)
    first_col = np.zeros(n, dtype=INDEX_DTYPE)
    for i in range(n):
        first = i
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            j = int(matrix.indices[jj])
            if j <= i and j < first:
                first = j
        first_col[i] = first
        pointers[i + 1] = pointers[i] + (i - first + 1)

    profile = np.zeros(int(pointers[-1]), dtype=matrix.dtype)
    upper_rows, upper_cols, upper_vals = [], [], []
    for i in range(n):
        for jj in range(int(matrix.ptr[i]), int(matrix.ptr[i + 1])):
            j = int(matrix.indices[jj])
            if j <= i:
                profile[int(pointers[i]) + (j - int(first_col[i]))] = (
                    matrix.data[jj]
                )
            else:
                upper_rows.append(i)
                upper_cols.append(j)
                upper_vals.append(matrix.data[jj])
    if upper_rows:
        upper = CSRMatrix.from_triplets(
            np.asarray(upper_rows, dtype=INDEX_DTYPE),
            np.asarray(upper_cols, dtype=INDEX_DTYPE),
            np.asarray(upper_vals, dtype=matrix.dtype),
            matrix.shape,
        )
    else:
        upper = None
    sky = SKYMatrix(pointers, profile, matrix.shape, upper=upper, nnz=matrix.nnz)
    stored = sky.profile_size + (sky.upper.nnz if sky.upper else 0)
    if (
        fill_budget is not None
        and matrix.nnz
        and stored > fill_budget * matrix.nnz
    ):
        raise ConversionError(
            f"CSR->SKY would store {stored} slots for {matrix.nnz} "
            f"non-zeros ({stored / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    cost = ConversionCost(
        FormatName.CSR, FormatName.SKY, matrix.nnz,
        touched_slots=2 * matrix.nnz + stored,
    )
    return sky, cost


def sky_to_csr_loop(matrix: SKYMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Per-row profile-scan loop (the pre-vectorization ``sky_to_csr``)."""
    first = matrix.first_columns()
    rows_list = []
    cols_list = []
    vals_list = []
    for i in range(matrix.n_rows):
        start, end = int(matrix.pointers[i]), int(matrix.pointers[i + 1])
        segment = matrix.profile[start:end]
        nz = np.nonzero(segment)[0]
        rows_list.append(np.full(nz.shape[0], i, dtype=INDEX_DTYPE))
        cols_list.append(nz + int(first[i]))
        vals_list.append(segment[nz])
    if matrix.upper is not None:
        upper_rows = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
            matrix.upper.row_degrees(),
        )
        rows_list.append(upper_rows)
        cols_list.append(matrix.upper.indices)
        vals_list.append(matrix.upper.data)
    rows = np.concatenate(rows_list) if rows_list else np.zeros(0, INDEX_DTYPE)
    cols = np.concatenate(cols_list) if cols_list else np.zeros(0, INDEX_DTYPE)
    vals = (
        np.concatenate(vals_list)
        if vals_list
        else np.zeros(0, dtype=matrix.dtype)
    )
    csr = CSRMatrix.from_triplets(rows, cols, vals, matrix.shape)
    cost = ConversionCost(
        FormatName.SKY, FormatName.CSR, csr.nnz,
        touched_slots=matrix.profile_size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_hyb_loop(
    matrix: CSRMatrix, ell_width: Optional[int] = None
) -> Tuple[HYBMatrix, ConversionCost]:
    """Per-row split loop (the pre-vectorization ``csr_to_hyb``)."""
    degrees = matrix.row_degrees()
    if ell_width is None:
        if matrix.nnz == 0 or degrees.size == 0:
            ell_width = 0
        else:
            ell_width = int(np.percentile(degrees, 67))
    ell_width = max(int(ell_width), 0)

    n_rows = matrix.n_rows
    indices = np.zeros((ell_width, n_rows), dtype=INDEX_DTYPE)
    data = np.zeros((ell_width, n_rows), dtype=matrix.dtype)
    coo_rows = []
    coo_cols = []
    coo_vals = []
    ell_nnz = 0
    for i in range(n_rows):
        start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
        width = min(end - start, ell_width)
        indices[:width, i] = matrix.indices[start : start + width]
        data[:width, i] = matrix.data[start : start + width]
        ell_nnz += width
        if end - start > ell_width:
            overflow = slice(start + ell_width, end)
            coo_rows.append(
                np.full(end - start - ell_width, i, dtype=INDEX_DTYPE)
            )
            coo_cols.append(matrix.indices[overflow])
            coo_vals.append(matrix.data[overflow])
    ell = ELLMatrix(indices, data, matrix.shape, ell_nnz)
    if coo_rows:
        coo = COOMatrix(
            np.concatenate(coo_rows),
            np.concatenate(coo_cols),
            np.concatenate(coo_vals),
            matrix.shape,
        )
    else:
        coo = COOMatrix(
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=matrix.dtype),
            matrix.shape,
        )
    hyb = HYBMatrix(ell, coo)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.HYB,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + 2 * ell.padded_size + 3 * coo.nnz,
    )
    return hyb, cost


def extract_structure_features_loop(matrix: CSRMatrix) -> dict:
    """Per-row/per-element Table 2 feature pass (benchmark baseline).

    Walks the structure with Python loops, then applies the *same* summary
    formulas as :func:`repro.features.extract.extract_structure_features`
    on the collected arrays, so results match to the last bit.  Does not
    tick the extraction event meter.
    """
    from repro.features.extract import TRUE_DIAGONAL_THRESHOLD
    from repro.util.stats import gini_like_variance

    m, n = matrix.shape
    nnz = matrix.nnz

    degrees = np.zeros(m, dtype=INDEX_DTYPE)
    diag_counts: dict = {}
    for i in range(m):
        start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
        degrees[i] = end - start
        for jj in range(start, end):
            k = int(matrix.indices[jj]) - i
            diag_counts[k] = diag_counts.get(k, 0) + 1

    aver_rd = nnz / m
    max_rd = int(degrees.max()) if degrees.size else 0
    var_rd = gini_like_variance(degrees, aver_rd)

    ndiags = len(diag_counts)
    n_true = 0
    for k, count in diag_counts.items():
        length = min(m, n - k) - max(0, -k)
        if count / max(length, 1) >= TRUE_DIAGONAL_THRESHOLD:
            n_true += 1
    ntdiags_ratio = (n_true / ndiags) if ndiags else 0.0

    er_dia = nnz / (ndiags * m) if ndiags else 1.0
    er_ell = nnz / (max_rd * m) if max_rd else 1.0

    return {
        "m": int(m),
        "n": int(n),
        "ndiags": int(ndiags),
        "ntdiags_ratio": float(ntdiags_ratio),
        "nnz": int(nnz),
        "aver_rd": float(aver_rd),
        "max_rd": int(max_rd),
        "var_rd": float(var_rd),
        "er_dia": float(er_dia),
        "er_ell": float(er_ell),
    }


def csr_spmm_loop(matrix: CSRMatrix, X: np.ndarray) -> np.ndarray:
    """Scalar triple loop ``Y = A @ X`` (the SpMM oracle).

    One multiply-accumulate per stored non-zero per RHS column, in row
    order — the reference the vectorized multi-RHS kernels in
    :mod:`repro.kernels.spmm` are benchmarked and differentially tested
    against.  Does not tick any event meters.
    """
    X = matrix.check_operand_block(X)
    k = X.shape[1]
    Y = np.zeros((matrix.n_rows, k), dtype=matrix.dtype)
    for i in range(matrix.n_rows):
        start, end = int(matrix.ptr[i]), int(matrix.ptr[i + 1])
        for jj in range(start, end):
            j = int(matrix.indices[jj])
            a = matrix.data[jj]
            for c in range(k):
                Y[i, c] += a * X[j, c]
    return Y
