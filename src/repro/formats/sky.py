"""SKY (skyline) format — MKL's ``mkl_xskymv`` format.

Skyline storage keeps, for each row, the dense segment from the row's first
non-zero up to the diagonal (the "profile" of a factorized banded matrix).
It is the storage of choice for direct solvers on reordered FEM matrices;
as an SpMV format it pays for every zero inside the profile, so it only
competes on matrices whose profile is nearly full.

This implementation stores the *lower* profile including the diagonal plus
a strict-upper CSR remainder, so general (non-triangular) matrices round-
trip exactly.  MKL's skyline routine handles triangular operands; for those
the remainder is empty and the layout matches MKL's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName


@register_format(FormatName.SKY)
class SKYMatrix(SparseMatrix):
    """Skyline matrix: per-row dense lower profile + upper remainder."""

    def __init__(
        self,
        pointers: np.ndarray,
        profile: np.ndarray,
        shape: Tuple[int, int],
        upper: Optional[object] = None,
        nnz: int = 0,
    ) -> None:
        profile = np.asarray(profile)
        super().__init__(shape, profile.dtype)
        if self.n_rows != self.n_cols:
            raise FormatError(
                f"skyline storage needs a square matrix, got {shape}"
            )
        pointers = np.asarray(pointers, dtype=INDEX_DTYPE)
        if pointers.shape[0] != self.n_rows + 1:
            raise FormatError(
                f"pointers must have n_rows+1 entries, got {pointers.shape[0]}"
            )
        if int(pointers[0]) != 0 or int(pointers[-1]) != profile.shape[0]:
            raise FormatError("pointers must span the profile array")
        widths = np.diff(pointers)
        if np.any(widths < 1) or np.any(widths > np.arange(1, self.n_rows + 1)):
            raise FormatError(
                "each row's profile must cover at least the diagonal and "
                "reach no further left than column 0"
            )
        if upper is not None and upper.shape != shape:
            raise FormatError("upper remainder shape mismatch")
        self.pointers = pointers
        self.profile = profile
        self.upper = upper
        self._nnz = int(nnz)

    @classmethod
    def from_csr(cls, csr) -> "SKYMatrix":
        """Build from CSR, splitting into lower profile + upper remainder."""
        from repro.formats.csr import CSRMatrix

        if csr.n_rows != csr.n_cols:
            raise FormatError(
                f"skyline storage needs a square matrix, got {csr.shape}"
            )
        n = csr.n_rows
        rows = np.repeat(
            np.arange(n, dtype=INDEX_DTYPE), csr.row_degrees()
        )
        lower_mask = csr.indices <= rows

        # Profile width per row: diagonal minus the leftmost lower entry.
        first_col = np.arange(n, dtype=INDEX_DTYPE).copy()
        lrows = rows[lower_mask]
        lcols = csr.indices[lower_mask]
        np.minimum.at(first_col, lrows, lcols)
        widths = np.arange(n, dtype=INDEX_DTYPE) - first_col + 1
        pointers = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(widths, out=pointers[1:])

        profile = np.zeros(int(pointers[-1]), dtype=csr.dtype)
        slots = pointers[lrows] + (lcols - first_col[lrows])
        profile[slots] = csr.data[lower_mask]

        upper_mask = ~lower_mask
        if np.any(upper_mask):
            upper = CSRMatrix.from_triplets(
                rows[upper_mask],
                csr.indices[upper_mask],
                csr.data[upper_mask],
                csr.shape,
            )
        else:
            upper = None
        return cls(pointers, profile, csr.shape, upper=upper, nnz=csr.nnz)

    def _refresh_values(self, csr) -> "SKYMatrix":
        from repro.formats.csr import CSRMatrix

        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            rows = np.repeat(
                np.arange(self.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
            )
            lower_mask = csr.indices <= rows
            first_col = self.first_columns()
            lrows = rows[lower_mask]
            slots = self.pointers[lrows] + (
                csr.indices[lower_mask] - first_col[lrows]
            )
            plan = (slots, lower_mask)
            self._refresh_plan = plan
        slots, lower_mask = plan
        if lower_mask.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure splits {lower_mask.shape[0]}"
            )
        profile = np.zeros_like(self.profile)
        profile[slots] = csr.data[lower_mask]
        upper = None
        if self.upper is not None:
            # The strict-upper remainder keeps CSR row-major order, so
            # its structure arrays carry over with the masked new values.
            upper = CSRMatrix._from_validated(
                self.upper.ptr,
                self.upper.indices,
                csr.data[~lower_mask],
                self.shape,
            )
        out = SKYMatrix(
            self.pointers, profile, self.shape, upper=upper, nnz=self._nnz
        )
        out._refresh_plan = plan
        return out

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def profile_size(self) -> int:
        """Stored lower-profile slots including in-profile zeros."""
        return int(self.profile.shape[0])

    def fill_ratio(self) -> float:
        """True non-zeros per stored slot (profile + upper remainder)."""
        stored = self.profile_size + (self.upper.nnz if self.upper else 0)
        if stored == 0:
            return 1.0
        return self.nnz / stored

    def first_columns(self) -> np.ndarray:
        """Leftmost profile column of each row."""
        widths = np.diff(self.pointers)
        return np.arange(self.n_rows, dtype=INDEX_DTYPE) - widths + 1

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        first = self.first_columns()
        for i in range(self.n_rows):
            start, end = int(self.pointers[i]), int(self.pointers[i + 1])
            dense[i, first[i] : i + 1] = self.profile[start:end]
        if self.upper is not None:
            dense += self.upper.to_dense()
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference profile-row loop plus the upper remainder."""
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        first = self.first_columns()
        for i in range(self.n_rows):
            start, end = int(self.pointers[i]), int(self.pointers[i + 1])
            y[i] = np.dot(self.profile[start:end], x[first[i] : i + 1])
        if self.upper is not None:
            y += self.upper.spmv(x)
        return y

    def memory_bytes(self) -> int:
        total = int(self.pointers.nbytes + self.profile.nbytes)
        if self.upper is not None:
            total += self.upper.memory_bytes()
        return total
