"""CSC (Compressed Sparse Column) — MKL's ``mkl_xcscmv`` format.

Figure 5 lists six MKL per-format routines; CSC is one of them.  The layout
mirrors CSR with the roles of rows and columns swapped: ``ptr[j]:ptr[j+1]``
delimits column ``j``, ``indices`` holds row indices, and ``data`` the
values in column-major order.

CSC SpMV is a *scatter* (y[i] += a_ij * x_j, accumulating into many rows
per column), the opposite data-flow of CSR's gather — good when the input
vector is sparse or reused column-wise, rarely optimal for plain dense-x
SpMV, which is why SMAT's basic candidate set omits it and it ships as an
extension format.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName
from repro.util.validation import (
    check_1d,
    check_index_range,
    check_same_length,
    check_sorted_within_rows,
)


@register_format(FormatName.CSC)
class CSCMatrix(SparseMatrix):
    """Compressed sparse column matrix."""

    def __init__(
        self,
        ptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        data = np.asarray(data)
        super().__init__(shape, data.dtype)
        ptr = check_1d("ptr", np.asarray(ptr, dtype=INDEX_DTYPE))
        indices = check_1d("indices", np.asarray(indices, dtype=INDEX_DTYPE))
        data = check_1d("data", data)
        check_same_length(("indices", "data"), (indices, data))

        if ptr.shape[0] != self.n_cols + 1:
            raise FormatError(
                f"CSC ptr must have n_cols+1 = {self.n_cols + 1} entries, "
                f"got {ptr.shape[0]}"
            )
        if int(ptr[0]) != 0 or int(ptr[-1]) != indices.shape[0]:
            raise FormatError(
                f"ptr must start at 0 and end at nnz={indices.shape[0]}"
            )
        if np.any(np.diff(ptr) < 0):
            raise FormatError("ptr must be monotonically non-decreasing")
        check_index_range("indices", indices, self.n_rows)
        if not check_sorted_within_rows(ptr, indices):
            raise FormatError(
                "CSC row indices must be strictly increasing within each "
                "column; build through CSCMatrix.from_csr for arbitrary input"
            )

        self.ptr = ptr
        self.indices = indices
        self.data = data

    @classmethod
    def from_csr(cls, csr) -> "CSCMatrix":
        """Build from a CSR matrix (one transpose-style resort)."""
        rows = np.repeat(
            np.arange(csr.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
        )
        order = np.lexsort((rows, csr.indices))
        cols_sorted = csr.indices[order]
        ptr = np.zeros(csr.n_cols + 1, dtype=INDEX_DTYPE)
        np.add.at(ptr, cols_sorted + 1, 1)
        np.cumsum(ptr, out=ptr)
        return cls(ptr, rows[order], csr.data[order], csr.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        from repro.formats.csr import CSRMatrix

        return cls.from_csr(CSRMatrix.from_dense(dense))

    def _refresh_values(self, csr) -> "CSCMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            rows = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
            )
            plan = np.lexsort((rows, csr.indices))
            self._refresh_plan = plan
        if plan.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure permutes {plan.shape[0]}"
            )
        out = CSCMatrix(self.ptr, self.indices, csr.data[plan], self.shape)
        out._refresh_plan = plan
        return out

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def column_degrees(self) -> np.ndarray:
        """Stored entries per column."""
        return np.diff(self.ptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        for col in range(self.n_cols):
            start, end = int(self.ptr[col]), int(self.ptr[col + 1])
            np.add.at(dense[:, col], self.indices[start:end], self.data[start:end])
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference column-loop SpMV: one AXPY-style scatter per column."""
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for j in range(self.n_cols):
            start, end = int(self.ptr[j]), int(self.ptr[j + 1])
            if end > start and x[j] != 0:
                y[self.indices[start:end]] += self.data[start:end] * x[j]
        return y

    def memory_bytes(self) -> int:
        return int(self.ptr.nbytes + self.indices.nbytes + self.data.nbytes)
