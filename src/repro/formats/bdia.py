"""BDIA (Blocked DIAgonal) — the paper's other §2.1 blocking variant.

"When there exist many dense sub-blocks in a sparse matrix, the
corresponding blocking variants (i.e. BCSR, BDIA, etc.) may perform
better."  BDIA groups *contiguous* occupied diagonals into bands and stores
each band as one dense ``width x n_rows`` slab: compared with plain DIA it
amortises the per-diagonal loop overhead over whole bands and reads the X
vector once per band instead of once per diagonal — exactly the CRSD-style
optimisation the paper cites for diagonally-structured matrices.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName


@register_format(FormatName.BDIA)
class BDIAMatrix(SparseMatrix):
    """Banded-diagonal matrix: a list of dense diagonal bands.

    Band ``k`` covers diagonal offsets ``offsets[k] ... offsets[k] +
    widths[k] - 1`` and stores them in ``bands[k]``, a dense
    ``(widths[k], n_rows)`` array laid out exactly like DIA's data rows.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        bands: List[np.ndarray],
        shape: Tuple[int, int],
    ) -> None:
        if not bands:
            raise FormatError("BDIA needs at least one band")
        super().__init__(shape, np.asarray(bands[0]).dtype)
        offsets = np.asarray(offsets, dtype=INDEX_DTYPE)
        if offsets.shape[0] != len(bands):
            raise FormatError(
                f"{len(bands)} bands but {offsets.shape[0]} band offsets"
            )
        checked: List[np.ndarray] = []
        previous_end = None
        for start, band in zip(offsets, bands):
            band = np.asarray(band)
            if band.ndim != 2 or band.shape[1] != self.n_rows:
                raise FormatError(
                    f"band must be (width, n_rows={self.n_rows}), "
                    f"got {band.shape}"
                )
            if band.dtype != self.dtype:
                raise FormatError("bands must share one dtype")
            end = int(start) + band.shape[0] - 1
            if previous_end is not None and int(start) <= previous_end:
                raise FormatError(
                    "bands must be disjoint and sorted by offset"
                )
            previous_end = end
            checked.append(band)
        self.offsets = offsets
        self.bands = checked

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BDIAMatrix":
        from repro.formats.csr import CSRMatrix
        from repro.formats.convert import csr_to_bdia

        bdia, _ = csr_to_bdia(CSRMatrix.from_dense(dense), fill_budget=None)
        return bdia

    def _refresh_values(self, csr) -> "BDIAMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            row_of = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
            )
            diag_of = csr.indices - row_of
            band_idx = (
                np.searchsorted(self.offsets, diag_of, side="right") - 1
            )
            within = diag_of - self.offsets[band_idx]
            plan = tuple(
                (within[sel], row_of[sel], np.nonzero(sel)[0])
                for sel in (band_idx == b for b in range(self.n_bands))
            )
            self._refresh_plan = plan
        scattered = sum(rows.shape[0] for _, rows, _ in plan)
        if scattered != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure scatters {scattered}"
            )
        bands = [np.zeros_like(band) for band in self.bands]
        for band, (within, rows, source) in zip(bands, plan):
            band[within, rows] = csr.data[source]
        out = BDIAMatrix(self.offsets, bands, self.shape)
        out._refresh_plan = plan
        return out

    # ------------------------------------------------------------------
    @property
    def n_bands(self) -> int:
        return len(self.bands)

    @property
    def num_diags(self) -> int:
        """Total stored diagonals across all bands."""
        return int(sum(band.shape[0] for band in self.bands))

    @property
    def nnz(self) -> int:
        return int(sum(np.count_nonzero(band) for band in self.bands))

    @property
    def padded_size(self) -> int:
        return int(sum(band.size for band in self.bands))

    def fill_ratio(self) -> float:
        if self.padded_size == 0:
            return 1.0
        return self.nnz / self.padded_size

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        for start, band in zip(self.offsets, self.bands):
            for j in range(band.shape[0]):
                k = int(start) + j
                r_start = max(0, -k)
                r_end = min(self.n_rows, self.n_cols - k)
                if r_end <= r_start:
                    continue
                rr = np.arange(r_start, r_end)
                dense[rr, rr + k] = band[j, rr]
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference band loop: every diagonal of a band shares its setup."""
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for start, band in zip(self.offsets, self.bands):
            for j in range(band.shape[0]):
                k = int(start) + j
                i_start = max(0, -k)
                j_start = max(0, k)
                n = min(self.n_rows - i_start, self.n_cols - j_start)
                if n <= 0:
                    continue
                y[i_start : i_start + n] += (
                    band[j, i_start : i_start + n]
                    * x[j_start : j_start + n]
                )
        return y

    def memory_bytes(self) -> int:
        return int(
            self.offsets.nbytes
            + sum(band.nbytes for band in self.bands)
        )
