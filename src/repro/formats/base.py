"""Abstract base class and registry for sparse-matrix storage formats."""

from __future__ import annotations

import abc
from typing import Dict, Tuple, Type

import numpy as np

from repro.errors import FormatError
from repro.types import FormatName, Precision

_FORMAT_REGISTRY: Dict[FormatName, Type["SparseMatrix"]] = {}


def register_format(name: FormatName):
    """Class decorator registering a concrete format under ``name``.

    The registry is what makes SMAT "extension-free" (Section 3): a new
    format plugs in by registering its class and its kernels; the tuner
    discovers both through lookups rather than hard-coded dispatch.
    """

    def wrap(cls: Type["SparseMatrix"]) -> Type["SparseMatrix"]:
        _FORMAT_REGISTRY[name] = cls
        cls.format_name = name
        return cls

    return wrap


def resolve_format(name: FormatName) -> Type["SparseMatrix"]:
    """Return the class registered for ``name``."""
    try:
        return _FORMAT_REGISTRY[name]
    except KeyError:
        raise FormatError(f"no format registered under {name}") from None


class SparseMatrix(abc.ABC):
    """Common interface of all storage formats.

    Concrete formats store their arrays in the layout of the paper's
    Figure 2 and expose:

    * ``shape``, ``nnz`` — logical dimensions and stored non-zeros,
    * ``to_dense()`` — reference densification used by tests,
    * ``spmv(x)`` — the *reference* (clarity-first) kernel; optimized
      kernels live in :mod:`repro.kernels` and are selected by the tuner,
    * ``memory_bytes()`` — storage footprint including padding, feeding
      the cost model.
    """

    format_name: FormatName  # injected by @register_format

    def __init__(self, shape: Tuple[int, int], dtype: np.dtype) -> None:
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows <= 0 or n_cols <= 0:
            raise FormatError(f"matrix shape must be positive, got {shape}")
        self._shape = (n_rows, n_cols)
        self._dtype = np.dtype(dtype)
        # Validates that the dtype is a supported precision.
        Precision.from_dtype(self._dtype)

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, columns) of the logical matrix."""
        return self._shape

    @property
    def n_rows(self) -> int:
        return self._shape[0]

    @property
    def n_cols(self) -> int:
        return self._shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 or float64)."""
        return self._dtype

    @property
    def precision(self) -> Precision:
        return Precision.from_dtype(self._dtype)

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored non-zero elements (excluding padding)."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise the full dense matrix (tests and small examples only)."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A @ x in this format's natural traversal order."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Bytes of all stored arrays, including any zero padding."""

    # ------------------------------------------------------------------
    # Value refresh (structure-keyed plan reuse)
    # ------------------------------------------------------------------
    def refresh_values(self, csr: "SparseMatrix") -> "SparseMatrix":
        """A new instance with this structure and ``csr``'s values.

        The serving layer's structure-keyed cache calls this on a tier-2
        hit: the sparsity pattern already matched (same structural
        digest), so only the value/padding arrays are rebuilt.  The
        structure arrays (pointers, indices, offsets, ...) are *shared*
        with the refreshed instance, and the scatter plan mapping CSR
        entries to stored slots is computed once and reused across
        refreshes — the steady state is one zero fill plus one scatter.

        The caller guarantees ``csr`` has exactly this matrix's sparsity
        structure (the engine keys on the structural digest); only the
        cheap invariants are re-checked here.
        """
        self._check_refresh_source(csr)
        return self._refresh_values(csr)

    def _check_refresh_source(self, csr: "SparseMatrix") -> None:
        from repro.formats.csr import CSRMatrix

        if not isinstance(csr, CSRMatrix):
            raise FormatError(
                f"refresh_values needs a CSRMatrix source, got "
                f"{type(csr).__name__}"
            )
        if csr.shape != self.shape:
            raise FormatError(
                f"refresh_values shape mismatch: source is {csr.shape}, "
                f"stored structure is {self.shape}"
            )
        if csr.dtype != self.dtype:
            raise FormatError(
                f"refresh_values dtype mismatch: source is {csr.dtype}, "
                f"stored structure is {self.dtype}"
            )

    def _refresh_values(self, csr: "SparseMatrix") -> "SparseMatrix":
        raise FormatError(
            f"{type(self).__name__} does not support value refresh"
        )

    def check_operand(self, x: np.ndarray) -> np.ndarray:
        """Validate and canonicalise an SpMV input vector."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise FormatError(f"x must be a vector, got shape {x.shape}")
        if x.shape[0] != self.n_cols:
            raise FormatError(
                f"dimension mismatch: matrix is {self.shape}, x has {x.shape[0]}"
            )
        return x.astype(self._dtype, copy=False)

    def check_operand_block(self, X: np.ndarray) -> np.ndarray:
        """Validate and canonicalise a multi-RHS SpMM input block.

        ``X`` stacks the RHS vectors column-wise: shape ``(n_cols, k)``
        for a batch of k products.
        """
        X = np.asarray(X)
        if X.ndim != 2:
            raise FormatError(
                f"X must be a 2-D RHS block, got shape {X.shape}"
            )
        if X.shape[0] != self.n_cols:
            raise FormatError(
                f"dimension mismatch: matrix is {self.shape}, X has "
                f"{X.shape[0]} rows"
            )
        if X.shape[1] < 1:
            raise FormatError("X must have at least one RHS column")
        return X.astype(self._dtype, copy=False)

    def spmm(self, X: np.ndarray) -> np.ndarray:
        """Reference ``Y = A @ X``: one reference SpMV per RHS column.

        Formats with a native multi-RHS kernel are served through
        :mod:`repro.kernels.spmm`; this default keeps every format
        correct under batching regardless.
        """
        X = self.check_operand_block(X)
        Y = np.empty((self.n_rows, X.shape[1]), dtype=self._dtype)
        for j in range(X.shape[1]):
            Y[:, j] = self.spmv(X[:, j])
        return Y

    def flop_count(self) -> int:
        """Floating point operations of one SpMV (2 per stored non-zero).

        This is the numerator of every GFLOPS figure in the paper: useless
        multiplies on DIA/ELL padding are *not* counted, which is exactly why
        heavy padding shows up as low GFLOPS.
        """
        return 2 * self.nnz

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype.name})"
        )
