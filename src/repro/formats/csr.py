"""CSR (Compressed Sparse Row) — the paper's default, unified-interface format.

Layout (Figure 2a): ``data`` holds the non-zeros row by row, ``indices`` their
column indices, and ``ptr[i]:ptr[i+1]`` delimits row ``i``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName
from repro.util.validation import (
    check_1d,
    check_index_range,
    check_same_length,
    check_sorted_within_rows,
)


@register_format(FormatName.CSR)
class CSRMatrix(SparseMatrix):
    """Compressed sparse row matrix.

    The constructor canonicalises its input: column indices are sorted within
    each row and duplicate entries are summed, because the optimized kernels
    and the CSR->DIA/ELL converters rely on sorted, duplicate-free rows.
    """

    def __init__(
        self,
        ptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        data = np.asarray(data)
        super().__init__(shape, data.dtype)
        ptr = check_1d("ptr", np.asarray(ptr, dtype=INDEX_DTYPE))
        indices = check_1d("indices", np.asarray(indices, dtype=INDEX_DTYPE))
        data = check_1d("data", data)
        check_same_length(("indices", "data"), (indices, data))

        if ptr.shape[0] != self.n_rows + 1:
            raise FormatError(
                f"ptr must have n_rows+1 = {self.n_rows + 1} entries, "
                f"got {ptr.shape[0]}"
            )
        if int(ptr[0]) != 0 or int(ptr[-1]) != indices.shape[0]:
            raise FormatError(
                f"ptr must start at 0 and end at nnz={indices.shape[0]}, "
                f"got [{ptr[0]}, ..., {ptr[-1]}]"
            )
        if np.any(np.diff(ptr) < 0):
            raise FormatError("ptr must be monotonically non-decreasing")
        check_index_range("indices", indices, self.n_cols)

        if not check_sorted_within_rows(ptr, indices):
            ptr, indices, data = _canonicalise(ptr, indices, data, self.n_rows)

        self.ptr = ptr
        self.indices = indices
        self.data = data

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise FormatError(f"dense matrix must be 2-D, got {dense.ndim}-D")
        rows, cols = np.nonzero(dense)
        data = dense[rows, cols]
        ptr = np.zeros(dense.shape[0] + 1, dtype=INDEX_DTYPE)
        np.add.at(ptr, rows + 1, 1)
        np.cumsum(ptr, out=ptr)
        return cls(ptr, cols.astype(INDEX_DTYPE), data, dense.shape)

    @classmethod
    def from_triplets(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Build from unordered (row, col, value) triplets; duplicates sum."""
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        cols = np.asarray(cols, dtype=INDEX_DTYPE)
        data = np.asarray(data)
        check_same_length(("rows", "cols", "data"), (rows, cols, data))
        check_index_range("rows", rows, int(shape[0]))
        check_index_range("cols", cols, int(shape[1]))
        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]
        ptr = np.zeros(int(shape[0]) + 1, dtype=INDEX_DTYPE)
        np.add.at(ptr, rows + 1, 1)
        np.cumsum(ptr, out=ptr)
        return cls(ptr, cols, data, shape)

    @classmethod
    def _from_validated(
        cls,
        ptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Internal: adopt already-canonical structure arrays unchecked.

        Only the value-refresh path uses this — the structure arrays come
        straight out of an existing validated instance, so re-running the
        constructor's canonicalisation would be pure overhead.
        """
        out = cls.__new__(cls)
        SparseMatrix.__init__(out, shape, data.dtype)
        out.ptr = ptr
        out.indices = indices
        out.data = data
        return out

    def _refresh_values(self, csr: "CSRMatrix") -> "CSRMatrix":
        if csr.nnz != self.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure has {self.nnz}"
            )
        return CSRMatrix._from_validated(
            self.ptr, self.indices, csr.data.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # SparseMatrix interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def to_dense(self, reference: bool = False) -> np.ndarray:
        """Dense copy; ``reference=True`` keeps the row-loop oracle.

        The default scatters every entry in one ``np.add.at`` (add, not
        assign, so duplicate survivors, if any, still sum correctly).
        """
        dense = np.zeros(self.shape, dtype=self.dtype)
        if reference:
            for row in range(self.n_rows):
                start, end = int(self.ptr[row]), int(self.ptr[row + 1])
                np.add.at(
                    dense[row], self.indices[start:end], self.data[start:end]
                )
            return dense
        if self.nnz:
            row_of = np.repeat(
                np.arange(self.n_rows, dtype=INDEX_DTYPE), self.row_degrees()
            )
            np.add.at(dense, (row_of, self.indices), self.data)
        return dense

    def spmv(self, x: np.ndarray, reference: bool = False) -> np.ndarray:
        """SpMV; ``reference=True`` runs the row-loop oracle (Figure 2a).

        The default is the loop-free gather + cumulative-sum segment
        reduction (the same arithmetic as the library's vectorized CSR
        kernel), so code going through the format object — the serving
        verifier, AMG residuals, the apps — no longer pays a per-row
        Python loop.
        """
        x = self.check_operand(x)
        if reference:
            y = np.zeros(self.n_rows, dtype=self.dtype)
            for i in range(self.n_rows):
                start, end = int(self.ptr[i]), int(self.ptr[i + 1])
                if end > start:
                    y[i] = np.dot(
                        self.data[start:end], x[self.indices[start:end]]
                    )
            return y
        if self.nnz == 0:
            return np.zeros(self.n_rows, dtype=self.dtype)
        products = self.data * x[self.indices]
        csum = np.concatenate(
            [np.zeros(1, dtype=products.dtype), np.cumsum(products)]
        )
        return (csum[self.ptr[1:]] - csum[self.ptr[:-1]]).astype(
            self.dtype, copy=False
        )

    def memory_bytes(self) -> int:
        return int(
            self.ptr.nbytes + self.indices.nbytes + self.data.nbytes
        )

    # ------------------------------------------------------------------
    # Structure queries used by the feature extractor
    # ------------------------------------------------------------------
    def row_degrees(self) -> np.ndarray:
        """Number of stored non-zeros in each row."""
        return np.diff(self.ptr)

    def diagonal_offsets(self) -> np.ndarray:
        """Sorted distinct diagonal offsets (col - row) of the non-zeros."""
        if self.nnz == 0:
            return np.zeros(0, dtype=INDEX_DTYPE)
        row_of = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), self.row_degrees()
        )
        return np.unique(self.indices - row_of)


def _canonicalise(
    ptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n_rows: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort columns within rows and sum duplicates, rebuilding ptr.

    Fully vectorized (no per-row Python loop): entries are keyed by
    ``row * span + column``, sorted once, and duplicates merged with a
    single scatter-add — this path sits under every sparse matrix product
    in the AMG solver, where matrices have 10^5+ rows.
    """
    if indices.shape[0] == 0:
        return ptr.copy(), indices, data
    degrees = np.diff(ptr)
    row_of = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), degrees)
    span = int(indices.max()) + 1
    keys = row_of * span + indices
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    summed = np.zeros(unique_keys.shape[0], dtype=data.dtype)
    np.add.at(summed, inverse, data)
    out_rows = unique_keys // span
    out_cols = unique_keys % span
    new_ptr = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(new_ptr, out_rows + 1, 1)
    np.cumsum(new_ptr, out=new_ptr)
    return new_ptr, out_cols.astype(INDEX_DTYPE), summed
