"""Structure deltas: incremental edits to a CSR matrix and its operands.

SMAT's premise is that format choice follows structure, but real
workloads — dynamic graphs, AMG hierarchies under remeshing — mutate that
structure incrementally.  This module is the storage half of the delta
path: :func:`apply_delta` splices an edge insert/delete schedule into a
canonical CSR matrix without re-sorting the untouched entries, and
:func:`patch_operand` carries the same edit into an already-converted
operand (ELL, DIA, ...) in place of a from-scratch reconversion.

Two invariants anchor everything downstream:

* **Bitwise equality.**  A patched operand must be indistinguishable from
  ``convert(new_csr, fmt)`` — same arrays, same padding zeros, same
  dtypes.  The differential sweep in ``tests/test_delta_formats.py``
  asserts this across every format and 200 seeds, so the serving layer
  may treat "patched" and "rebuilt" plans as the same object.
* **Exact effect accounting.**  The :class:`DeltaEffect` returned with
  the new matrix lists exactly which stored entries appeared, vanished,
  or changed value — the O(delta) feed for
  :class:`repro.features.incremental.DeltaFeatures` and for the per-row
  operand patchers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import FormatError
from repro.formats.base import SparseMatrix
from repro.formats.convert import convert, csr_to_coo
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.types import INDEX_DTYPE, FormatName
from repro.util.events import EventCounter

#: Ticks once per in-place operand patch (rebuild fallbacks do not count;
#: they tick ``CONVERSION_EVENTS`` instead).  The serving layer reads this
#: meter to prove the migration policy actually avoided reconversions.
PATCH_EVENTS = EventCounter("operand_patches")


@dataclass(frozen=True)
class StructureDelta:
    """One batch of structural edits against a fixed-shape CSR matrix.

    Deletions name stored entries by coordinate and MUST exist in the
    base matrix (a missing coordinate raises :class:`FormatError` — a
    silent no-op would let the feature maintenance drift).  Insertions
    at a coordinate that survives deletion *sum* into the stored value,
    mirroring the duplicate-summing of :meth:`CSRMatrix.from_triplets`;
    a coordinate both deleted and inserted ends up holding exactly the
    inserted value.
    """

    insert_rows: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=INDEX_DTYPE)
    )
    insert_cols: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=INDEX_DTYPE)
    )
    insert_vals: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    delete_rows: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=INDEX_DTYPE)
    )
    delete_cols: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=INDEX_DTYPE)
    )

    @property
    def size(self) -> int:
        """Edit count: inserted plus deleted coordinates."""
        return int(self.insert_rows.shape[0] + self.delete_rows.shape[0])


@dataclass(frozen=True)
class DeltaEffect:
    """Exactly which stored entries a delta created, destroyed, or changed.

    ``added_*`` lists genuinely-new stored entries (insertions that did
    not collide with a surviving entry), ``removed_*`` lists entries that
    existed before and do not after, and ``updated_*`` lists entries that
    exist on both sides with a different value (insertion summed into a
    survivor).  Feature maintenance consumes added/removed (updates do
    not move any structural parameter); operand patchers consume all
    three.
    """

    shape: Tuple[int, int]
    added_rows: np.ndarray
    added_cols: np.ndarray
    removed_rows: np.ndarray
    removed_cols: np.ndarray
    updated_rows: np.ndarray
    updated_cols: np.ndarray

    @property
    def size(self) -> int:
        return int(
            self.added_rows.shape[0]
            + self.removed_rows.shape[0]
            + self.updated_rows.shape[0]
        )

    @property
    def structural_size(self) -> int:
        """Entries that appeared or vanished (what migration policy keys on)."""
        return int(self.added_rows.shape[0] + self.removed_rows.shape[0])

    def added_offsets(self) -> np.ndarray:
        """Diagonal offsets (col - row) of the genuinely-new entries."""
        return self.added_cols.astype(np.int64) - self.added_rows.astype(
            np.int64
        )

    def removed_offsets(self) -> np.ndarray:
        """Diagonal offsets (col - row) of the removed entries."""
        return self.removed_cols.astype(np.int64) - self.removed_rows.astype(
            np.int64
        )

    def touched_rows(self) -> np.ndarray:
        """Sorted distinct rows whose stored content changed in any way."""
        return np.unique(
            np.concatenate(
                [self.added_rows, self.removed_rows, self.updated_rows]
            )
        )


def apply_delta(
    matrix: CSRMatrix, delta: StructureDelta
) -> Tuple[CSRMatrix, DeltaEffect]:
    """Splice a delta into a canonical CSR matrix without re-sorting it.

    The base matrix's entries are already sorted by ``row * n + col``, so
    deletions are binary searches, insertions are one sort over the delta
    alone plus an :func:`np.insert` splice, and the untouched entries are
    carried over byte-for-byte.  Cost is ``O(delta log delta + nnz)``
    array traffic with no Python-level loop.
    """
    m, n = matrix.shape
    ins_rows = np.asarray(delta.insert_rows, dtype=INDEX_DTYPE)
    ins_cols = np.asarray(delta.insert_cols, dtype=INDEX_DTYPE)
    ins_vals = np.asarray(delta.insert_vals, dtype=matrix.dtype)
    del_rows = np.asarray(delta.delete_rows, dtype=INDEX_DTYPE)
    del_cols = np.asarray(delta.delete_cols, dtype=INDEX_DTYPE)
    for name, idx, bound in (
        ("insert_rows", ins_rows, m),
        ("insert_cols", ins_cols, n),
        ("delete_rows", del_rows, m),
        ("delete_cols", del_cols, n),
    ):
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= bound):
            raise FormatError(
                f"{name} out of range for shape {matrix.shape}"
            )
    if ins_rows.shape[0] != ins_cols.shape[0] or ins_rows.shape[0] != ins_vals.shape[0]:
        raise FormatError("insert rows/cols/vals must have equal lengths")
    if del_rows.shape[0] != del_cols.shape[0]:
        raise FormatError("delete rows/cols must have equal lengths")

    with obs.span(
        "delta.apply", nnz=int(matrix.nnz), edits=int(delta.size)
    ):
        return _apply_delta(matrix, ins_rows, ins_cols, ins_vals,
                            del_rows, del_cols)


def _apply_delta(matrix, ins_rows, ins_cols, ins_vals, del_rows, del_cols):
    m, n = matrix.shape
    span = np.int64(n)
    row_of = np.repeat(
        np.arange(m, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    old_keys = row_of.astype(np.int64) * span + matrix.indices.astype(np.int64)

    # -- deletions: binary-search each (deduplicated) coordinate ----------
    del_keys = np.unique(del_rows.astype(np.int64) * span + del_cols)
    pos = np.searchsorted(old_keys, del_keys)
    valid = (pos < old_keys.shape[0]) & (old_keys[np.minimum(
        pos, max(old_keys.shape[0] - 1, 0)
    )] == del_keys) if old_keys.size else np.zeros(del_keys.shape[0], bool)
    if not np.all(valid):
        missing = del_keys[~valid][0] if del_keys.size else -1
        raise FormatError(
            f"delete targets a missing entry at "
            f"(row={int(missing // span)}, col={int(missing % span)})"
        )
    keep = np.ones(old_keys.shape[0], dtype=bool)
    keep[pos] = False
    kept_keys = old_keys[keep]
    kept_vals = matrix.data[keep]

    # -- insertions: sum duplicates among themselves, then merge ----------
    ins_keys = ins_rows.astype(np.int64) * span + ins_cols
    uniq_ins, inverse = np.unique(ins_keys, return_inverse=True)
    summed = np.zeros(uniq_ins.shape[0], dtype=matrix.dtype)
    np.add.at(summed, inverse, ins_vals)

    cpos = np.searchsorted(kept_keys, uniq_ins)
    collide = np.zeros(uniq_ins.shape[0], dtype=bool)
    in_range = cpos < kept_keys.shape[0]
    collide[in_range] = kept_keys[cpos[in_range]] == uniq_ins[in_range]

    new_vals = kept_vals.copy()
    new_vals[cpos[collide]] += summed[collide]

    fresh_keys = uniq_ins[~collide]
    fresh_vals = summed[~collide]
    splice = np.searchsorted(kept_keys, fresh_keys)
    final_keys = np.insert(kept_keys, splice, fresh_keys)
    final_vals = np.insert(new_vals, splice, fresh_vals)

    final_rows = (final_keys // span).astype(INDEX_DTYPE)
    final_cols = (final_keys % span).astype(INDEX_DTYPE)
    ptr = np.zeros(m + 1, dtype=INDEX_DTYPE)
    np.cumsum(
        np.bincount(final_rows, minlength=m).astype(INDEX_DTYPE),
        out=ptr[1:],
    )
    new_csr = CSRMatrix._from_validated(ptr, final_cols, final_vals, (m, n))

    effect = DeltaEffect(
        shape=(m, n),
        added_rows=(fresh_keys // span).astype(INDEX_DTYPE),
        added_cols=(fresh_keys % span).astype(INDEX_DTYPE),
        removed_rows=(del_keys // span).astype(INDEX_DTYPE),
        removed_cols=(del_keys % span).astype(INDEX_DTYPE),
        updated_rows=(uniq_ins[collide] // span).astype(INDEX_DTYPE),
        updated_cols=(uniq_ins[collide] % span).astype(INDEX_DTYPE),
    )
    return new_csr, effect


@dataclass(frozen=True)
class PatchResult:
    """One patched (or rebuilt) operand plus how it was produced."""

    matrix: SparseMatrix
    #: ``"patched"`` — edited in O(delta rows) without reconversion;
    #: ``"rebuilt"`` — reconverted from the new CSR (fallback).
    mode: str


def patch_operand(
    operand: SparseMatrix,
    new_csr: CSRMatrix,
    effect: DeltaEffect,
) -> PatchResult:
    """Carry a structure delta into an already-converted operand.

    CSR adopts the new arrays directly; ELL and DIA are patched row- and
    coordinate-wise when their padded geometry survives the delta (same
    width, same diagonal set); every other format — and any geometry
    change — falls back to a from-scratch reconversion through CSR.
    Either way the result is bitwise-identical to
    ``convert(new_csr, operand.format_name)``.
    """
    fmt = operand.format_name
    if fmt is FormatName.CSR:
        PATCH_EVENTS.increment()
        return PatchResult(new_csr, "patched")
    if fmt is FormatName.COO:
        # The expansion is one repeat + two copies — already O(nnz) with
        # a constant far below any reconversion, so "patching" COO is
        # simply re-expanding the spliced CSR arrays.
        PATCH_EVENTS.increment()
        coo, _ = csr_to_coo(new_csr)
        return PatchResult(coo, "patched")
    if fmt is FormatName.ELL and isinstance(operand, ELLMatrix):
        patched = _patch_ell(operand, new_csr, effect)
        if patched is not None:
            PATCH_EVENTS.increment()
            return PatchResult(patched, "patched")
    if fmt is FormatName.DIA and isinstance(operand, DIAMatrix):
        patched = _patch_dia(operand, new_csr, effect)
        if patched is not None:
            PATCH_EVENTS.increment()
            return PatchResult(patched, "patched")
    rebuilt, _ = convert(new_csr, fmt, fill_budget=None)
    return PatchResult(rebuilt, "rebuilt")


def _patch_ell(
    operand: ELLMatrix, new_csr: CSRMatrix, effect: DeltaEffect
) -> Optional[ELLMatrix]:
    """Re-pack only the touched rows; None when the width changed.

    ELL slot positions depend only on each row's own entry order, so an
    untouched row's columns are already bitwise-correct; touched rows are
    zeroed and re-scattered exactly as :func:`csr_to_ell` would lay them
    out.
    """
    degrees = new_csr.row_degrees()
    max_rd = int(degrees.max()) if new_csr.n_rows and new_csr.nnz else 0
    if max_rd != operand.indices.shape[0]:
        return None
    touched = effect.touched_rows()
    indices = operand.indices.copy()
    data = operand.data.copy()
    if touched.size:
        indices[:, touched] = 0
        data[:, touched] = 0
        deg = degrees[touched]
        row_rep = np.repeat(touched, deg)
        starts = np.cumsum(deg) - deg
        slot = np.arange(row_rep.shape[0], dtype=INDEX_DTYPE) - np.repeat(
            starts, deg
        )
        src = np.repeat(new_csr.ptr[touched], deg) + slot
        indices[slot, row_rep] = new_csr.indices[src]
        data[slot, row_rep] = new_csr.data[src]
    return ELLMatrix._from_validated(
        indices, data, new_csr.shape, new_csr.nnz
    )


def _patch_dia(
    operand: DIAMatrix, new_csr: CSRMatrix, effect: DeltaEffect
) -> Optional[DIAMatrix]:
    """Overwrite only the touched coordinates; None when the diagonal set
    changed (a vanished or newborn diagonal reshapes the dense store)."""
    if not np.array_equal(new_csr.diagonal_offsets(), operand.offsets):
        return None
    rows = np.concatenate(
        [effect.added_rows, effect.removed_rows, effect.updated_rows]
    )
    cols = np.concatenate(
        [effect.added_cols, effect.removed_cols, effect.updated_cols]
    )
    data = operand.data.copy()
    if rows.size:
        diag_of = cols.astype(np.int64) - rows.astype(np.int64)
        diag_slot = np.searchsorted(operand.offsets, diag_of)
        # Final value at each touched coordinate: look it up in the new
        # CSR (0 when the entry vanished).  Removed coordinates may not
        # exist any more, so the lookup masks on an exact key match.
        span = np.int64(new_csr.n_cols)
        row_of = np.repeat(
            np.arange(new_csr.n_rows, dtype=INDEX_DTYPE),
            new_csr.row_degrees(),
        )
        keys = row_of.astype(np.int64) * span + new_csr.indices.astype(
            np.int64
        )
        want = rows.astype(np.int64) * span + cols.astype(np.int64)
        pos = np.searchsorted(keys, want)
        values = np.zeros(want.shape[0], dtype=new_csr.dtype)
        in_range = pos < keys.shape[0]
        hit = np.zeros(want.shape[0], dtype=bool)
        hit[in_range] = keys[pos[in_range]] == want[in_range]
        values[hit] = new_csr.data[pos[hit]]
        data[diag_slot, rows] = values
    return DIAMatrix._from_validated(
        operand.offsets.copy(), data, new_csr.shape
    )


def rebuild_operand(
    new_csr: CSRMatrix, fmt: FormatName
) -> SparseMatrix:
    """From-scratch reconversion (the reference the sweep compares against)."""
    rebuilt, _ = convert(new_csr, fmt, fill_budget=None)
    return rebuilt
