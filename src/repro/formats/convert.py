"""Format conversions with explicit cost accounting.

Section 7.3 charges the brute-force search baseline with *conversion*
overhead ("the conversion from CSR to ELL consumes 39.6 times of CSR-SpMV"
for one matrix).  Every converter here therefore returns, alongside the new
matrix, a :class:`ConversionCost` whose ``touched_slots`` counts element reads
plus writes *including padding* — the quantity that blows up for bad DIA/ELL
conversions and that the Table 3 bench converts into CSR-SpMV units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConversionError, FormatError
from repro.formats.base import SparseMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.sky import SKYMatrix
from repro.types import INDEX_DTYPE, FormatName
from repro.util.events import EventCounter

#: Ticks once per materialised format conversion (identity conversions are
#: free and do not count).  The serving layer reads this meter to prove
#: plan-cache hits reuse the already-converted matrix.
CONVERSION_EVENTS = EventCounter("format_conversions")

#: Refuse DIA/ELL conversions whose padded storage exceeds this multiple of
#: nnz.  Guards the execute-and-measure fallback from pathological blowups
#: (a power-law matrix converted to ELL can pad thousandfold).
DEFAULT_FILL_BUDGET = 20.0


@dataclass(frozen=True)
class ConversionCost:
    """Work accounting for one format conversion.

    ``touched_slots`` is the number of array slots read or written, padding
    included; dividing by ``2 * nnz`` (one CSR-SpMV's element operations)
    yields the paper's "times of CSR-SpMV" overhead unit.
    """

    source: FormatName
    target: FormatName
    nnz: int
    touched_slots: int

    def csr_spmv_units(self) -> float:
        """Conversion cost expressed in units of one CSR SpMV."""
        if self.nnz == 0:
            return 0.0
        return self.touched_slots / (2.0 * self.nnz)


def csr_to_coo(matrix: CSRMatrix) -> Tuple[COOMatrix, ConversionCost]:
    """Expand the row pointer into explicit row indices."""
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    coo = COOMatrix(rows, matrix.indices.copy(), matrix.data.copy(), matrix.shape)
    cost = ConversionCost(
        FormatName.CSR, FormatName.COO, matrix.nnz, touched_slots=3 * matrix.nnz
    )
    return coo, cost


def coo_to_csr(matrix: COOMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Sort triplets row-major and compress the row indices."""
    csr = CSRMatrix.from_triplets(
        matrix.rows, matrix.cols, matrix.data, matrix.shape
    )
    cost = ConversionCost(
        FormatName.COO, FormatName.CSR, matrix.nnz, touched_slots=4 * matrix.nnz
    )
    return csr, cost


def csr_to_dia(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[DIAMatrix, ConversionCost]:
    """Gather non-zeros into dense diagonals.

    Raises :class:`ConversionError` when ``num_diags * n_rows`` exceeds
    ``fill_budget * nnz`` (pass ``fill_budget=None`` to disable the guard).
    """
    offsets = matrix.diagonal_offsets()
    num_diags = int(offsets.shape[0])
    padded = num_diags * matrix.n_rows
    if fill_budget is not None and matrix.nnz and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->DIA would allocate {padded} slots for {matrix.nnz} "
            f"non-zeros ({padded / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    data = np.zeros((max(num_diags, 0), matrix.n_rows), dtype=matrix.dtype)
    if matrix.nnz:
        row_of = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
        )
        diag_of = matrix.indices - row_of
        diag_slot = np.searchsorted(offsets, diag_of)
        data[diag_slot, row_of] = matrix.data
    dia = DIAMatrix(offsets, data, matrix.shape)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.DIA,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + padded,
    )
    return dia, cost


def dia_to_csr(matrix: DIAMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Drop the padding and re-compress by row.

    Loop-free: diagonal offsets broadcast against the row index give every
    stored slot's column; one mask keeps the in-bounds non-zeros.
    """
    if matrix.data.size:
        offsets = matrix.offsets.astype(np.int64)
        row_grid = np.arange(matrix.n_rows, dtype=np.int64)[None, :]
        col_grid = row_grid + offsets[:, None]
        valid = (
            (col_grid >= 0) & (col_grid < matrix.n_cols) & (matrix.data != 0)
        )
        diag_of, rows = np.nonzero(valid)
        cols = rows + offsets[diag_of]
        vals = matrix.data[diag_of, rows]
    else:
        rows = np.zeros(0, dtype=INDEX_DTYPE)
        cols = np.zeros(0, dtype=INDEX_DTYPE)
        vals = np.zeros(0, dtype=matrix.dtype)
    csr = CSRMatrix.from_triplets(rows, cols, vals, matrix.shape)
    cost = ConversionCost(
        FormatName.DIA,
        FormatName.CSR,
        csr.nnz,
        touched_slots=matrix.padded_size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_ell(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[ELLMatrix, ConversionCost]:
    """Pack rows left and transpose to column-major ELL storage."""
    degrees = matrix.row_degrees()
    max_rd = int(degrees.max()) if matrix.n_rows and matrix.nnz else 0
    padded = max_rd * matrix.n_rows
    if fill_budget is not None and matrix.nnz and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->ELL would allocate {padded} slots for {matrix.nnz} "
            f"non-zeros ({padded / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    indices = np.zeros((max_rd, matrix.n_rows), dtype=INDEX_DTYPE)
    data = np.zeros((max_rd, matrix.n_rows), dtype=matrix.dtype)
    if matrix.nnz:
        row_of = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE), degrees
        )
        # Position of each entry within its row: index minus the row start.
        slot = np.arange(matrix.nnz, dtype=INDEX_DTYPE) - np.repeat(
            matrix.ptr[:-1], degrees
        )
        indices[slot, row_of] = matrix.indices
        data[slot, row_of] = matrix.data
    ell = ELLMatrix(indices, data, matrix.shape, matrix.nnz)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.ELL,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + 2 * padded,
    )
    return ell, cost


def ell_to_csr(matrix: ELLMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Strip ELL padding (zero-valued slots) and compress."""
    valid = matrix.data != 0
    slots, rows = np.nonzero(valid)
    cols = matrix.indices[slots, rows]
    vals = matrix.data[slots, rows]
    csr = CSRMatrix.from_triplets(
        rows.astype(INDEX_DTYPE), cols, vals, matrix.shape
    )
    cost = ConversionCost(
        FormatName.ELL,
        FormatName.CSR,
        csr.nnz,
        touched_slots=matrix.padded_size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_bcsr(
    matrix: CSRMatrix,
    block_shape: Tuple[int, int] = (2, 2),
    fill_budget: Optional[float] = DEFAULT_FILL_BUDGET,
) -> Tuple[BCSRMatrix, ConversionCost]:
    """Tile into aligned dense blocks of ``block_shape``."""
    r, c = int(block_shape[0]), int(block_shape[1])
    if r <= 0 or c <= 0:
        raise FormatError(f"block dims must be positive, got {block_shape}")
    if matrix.nnz == 0:
        n_block_rows = -(-matrix.n_rows // r)
        empty = BCSRMatrix(
            np.zeros(n_block_rows + 1, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros((0, r, c), dtype=matrix.dtype),
            matrix.shape,
            0,
        )
        return empty, ConversionCost(FormatName.CSR, FormatName.BCSR, 0, 0)

    row_of = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    brow = row_of // r
    bcol = matrix.indices // c
    n_block_cols = -(-matrix.n_cols // c)
    block_key = brow * n_block_cols + bcol
    unique_keys, inverse = np.unique(block_key, return_inverse=True)
    n_blocks = int(unique_keys.shape[0])
    padded = n_blocks * r * c
    if fill_budget is not None and padded > fill_budget * matrix.nnz:
        raise ConversionError(
            f"CSR->BCSR{block_shape} would allocate {padded} slots for "
            f"{matrix.nnz} non-zeros; refusing"
        )
    blocks = np.zeros((n_blocks, r, c), dtype=matrix.dtype)
    blocks[inverse, row_of % r, matrix.indices % c] = matrix.data

    block_rows = unique_keys // n_block_cols
    block_cols = unique_keys % n_block_cols
    n_block_rows = -(-matrix.n_rows // r)
    block_ptr = np.zeros(n_block_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(block_ptr, block_rows + 1, 1)
    np.cumsum(block_ptr, out=block_ptr)

    bcsr = BCSRMatrix(block_ptr, block_cols, blocks, matrix.shape, matrix.nnz)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.BCSR,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + padded,
    )
    return bcsr, cost


def bcsr_to_csr(matrix: BCSRMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Scatter dense blocks back into triplets, dropping block padding.

    Loop-free: one ``nonzero`` over the 3-D block array; each surviving
    slot's global row/column follows from its block's row (expanded from
    the block pointer) and stored block column.
    """
    r, c = matrix.block_shape
    if matrix.blocks.size:
        brow_of = np.repeat(
            np.arange(matrix.n_block_rows, dtype=INDEX_DTYPE),
            np.diff(matrix.block_ptr),
        )
        block_of, rr, cc = np.nonzero(matrix.blocks)
        rows = (brow_of[block_of] * r + rr).astype(INDEX_DTYPE)
        cols = (matrix.block_cols[block_of] * c + cc).astype(INDEX_DTYPE)
        vals = matrix.blocks[block_of, rr, cc]
    else:
        rows = np.zeros(0, dtype=INDEX_DTYPE)
        cols = np.zeros(0, dtype=INDEX_DTYPE)
        vals = np.zeros(0, dtype=matrix.dtype)
    csr = CSRMatrix.from_triplets(rows, cols, vals, matrix.shape)
    cost = ConversionCost(
        FormatName.BCSR,
        FormatName.CSR,
        csr.nnz,
        touched_slots=matrix.blocks.size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_csc(matrix: CSRMatrix) -> Tuple[CSCMatrix, ConversionCost]:
    """Resort the entries column-major (a transpose-style pass)."""
    csc = CSCMatrix.from_csr(matrix)
    cost = ConversionCost(
        FormatName.CSR, FormatName.CSC, matrix.nnz,
        touched_slots=4 * matrix.nnz,
    )
    return csc, cost


def csc_to_csr(matrix: CSCMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Resort the entries row-major."""
    cols = np.repeat(
        np.arange(matrix.n_cols, dtype=INDEX_DTYPE), matrix.column_degrees()
    )
    csr = CSRMatrix.from_triplets(
        matrix.indices, cols, matrix.data, matrix.shape
    )
    cost = ConversionCost(
        FormatName.CSC, FormatName.CSR, matrix.nnz,
        touched_slots=4 * matrix.nnz,
    )
    return csr, cost


def csr_to_sky(
    matrix: CSRMatrix, fill_budget: Optional[float] = DEFAULT_FILL_BUDGET
) -> Tuple[SKYMatrix, ConversionCost]:
    """Pack the lower profile densely; the strict upper part stays CSR.

    Raises :class:`ConversionError` for non-square matrices or when the
    profile (in-profile zeros included) blows the fill budget.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ConversionError(
            f"skyline needs a square matrix, got {matrix.shape}"
        )
    sky = SKYMatrix.from_csr(matrix)
    stored = sky.profile_size + (sky.upper.nnz if sky.upper else 0)
    if (
        fill_budget is not None
        and matrix.nnz
        and stored > fill_budget * matrix.nnz
    ):
        raise ConversionError(
            f"CSR->SKY would store {stored} slots for {matrix.nnz} "
            f"non-zeros ({stored / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )
    cost = ConversionCost(
        FormatName.CSR, FormatName.SKY, matrix.nnz,
        touched_slots=2 * matrix.nnz + stored,
    )
    return sky, cost


def sky_to_csr(matrix: SKYMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Drop in-profile zeros and merge the upper remainder back in.

    Loop-free *and* sort-free: both sources arrive row-major with sorted
    columns — profile slots are stored left-to-right per row, and the
    strict-upper remainder is CSR — and every lower column is ≤ the
    diagonal while every upper column is > it.  Per-row concatenation of
    (kept lower, upper) is therefore already canonical CSR order, so the
    kernel is a counting pass (per-row degrees → pointer) plus two index
    scatters, with no ``lexsort`` over the merged triplets.
    """
    n = matrix.n_rows
    first = matrix.first_columns()
    widths = np.diff(matrix.pointers)
    row_of = np.repeat(np.arange(n, dtype=INDEX_DTYPE), widths)
    # Rank of each profile slot within its row: slot index minus row start.
    rank = np.arange(matrix.profile_size, dtype=INDEX_DTYPE) - np.repeat(
        matrix.pointers[:-1], widths
    )
    col_of = np.repeat(first, widths) + rank
    keep = matrix.profile != 0
    lower_rows = row_of[keep]
    lower_deg = np.bincount(lower_rows, minlength=n).astype(INDEX_DTYPE)
    if matrix.upper is not None:
        upper_deg = matrix.upper.row_degrees().astype(INDEX_DTYPE)
        upper_ptr = matrix.upper.ptr
    else:
        upper_deg = np.zeros(n, dtype=INDEX_DTYPE)
        upper_ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(lower_deg + upper_deg, out=ptr[1:])
    nnz = int(ptr[-1])
    indices = np.empty(nnz, dtype=INDEX_DTYPE)
    data = np.empty(nnz, dtype=matrix.dtype)
    # Destination of each kept lower slot: its row's segment start plus
    # its rank among the row's kept slots.
    lower_starts = np.zeros(n, dtype=INDEX_DTYPE)
    np.cumsum(lower_deg[:-1], out=lower_starts[1:])
    lower_dest = (
        np.repeat(ptr[:-1], lower_deg)
        + np.arange(lower_rows.shape[0], dtype=INDEX_DTYPE)
        - np.repeat(lower_starts, lower_deg)
    )
    indices[lower_dest] = col_of[keep]
    data[lower_dest] = matrix.profile[keep]
    if matrix.upper is not None:
        # Upper entries land after their row's lower block, keeping the
        # remainder's own within-row order.
        upper_dest = (
            np.repeat(ptr[:-1] + lower_deg, upper_deg)
            + np.arange(matrix.upper.nnz, dtype=INDEX_DTYPE)
            - np.repeat(upper_ptr[:-1], upper_deg)
        )
        indices[upper_dest] = matrix.upper.indices
        data[upper_dest] = matrix.upper.data
    csr = CSRMatrix._from_validated(ptr, indices, data, matrix.shape)
    cost = ConversionCost(
        FormatName.SKY, FormatName.CSR, csr.nnz,
        touched_slots=matrix.profile_size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_bdia(
    matrix: CSRMatrix,
    fill_budget: Optional[float] = DEFAULT_FILL_BUDGET,
    max_band_gap: int = 0,
) -> Tuple["BDIAMatrix", ConversionCost]:
    """Group occupied diagonals into contiguous bands.

    ``max_band_gap`` merges bands separated by at most that many empty
    diagonals (the empty ones are stored as zero padding) — trading a
    little fill for fewer, longer bands.
    """
    from repro.formats.bdia import BDIAMatrix

    offsets = matrix.diagonal_offsets()
    if offsets.shape[0] == 0:
        raise ConversionError("cannot build BDIA from an empty matrix")

    # Partition sorted offsets into contiguous runs (allowing small gaps).
    band_starts = [int(offsets[0])]
    band_ends = [int(offsets[0])]
    for k in offsets[1:]:
        k = int(k)
        if k - band_ends[-1] <= 1 + max_band_gap:
            band_ends[-1] = k
        else:
            band_starts.append(k)
            band_ends.append(k)

    padded = sum(
        (end - start + 1) * matrix.n_rows
        for start, end in zip(band_starts, band_ends)
    )
    if (
        fill_budget is not None
        and matrix.nnz
        and padded > fill_budget * matrix.nnz
    ):
        raise ConversionError(
            f"CSR->BDIA would allocate {padded} slots for {matrix.nnz} "
            f"non-zeros ({padded / matrix.nnz:.1f}x, budget "
            f"{fill_budget:.1f}x); refusing"
        )

    bands = [
        np.zeros((end - start + 1, matrix.n_rows), dtype=matrix.dtype)
        for start, end in zip(band_starts, band_ends)
    ]
    if matrix.nnz:
        row_of = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
        )
        diag_of = matrix.indices - row_of
        band_idx = np.searchsorted(
            np.asarray(band_starts, dtype=INDEX_DTYPE), diag_of, side="right"
        ) - 1
        starts_arr = np.asarray(band_starts, dtype=INDEX_DTYPE)
        within = diag_of - starts_arr[band_idx]
        for b in range(len(bands)):
            mask = band_idx == b
            bands[b][within[mask], row_of[mask]] = matrix.data[mask]

    bdia = BDIAMatrix(
        np.asarray(band_starts, dtype=INDEX_DTYPE), bands, matrix.shape
    )
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.BDIA,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + padded,
    )
    return bdia, cost


def bdia_to_csr(matrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Drop band padding and re-compress by row."""
    rows_list = []
    cols_list = []
    vals_list = []
    row_grid = np.arange(matrix.n_rows, dtype=np.int64)[None, :]
    for start, band in zip(matrix.offsets, matrix.bands):
        # One broadcast per band: offset + row index gives every slot's
        # column, one mask keeps the in-bounds non-zeros.
        offsets = int(start) + np.arange(band.shape[0], dtype=np.int64)
        col_grid = row_grid + offsets[:, None]
        valid = (col_grid >= 0) & (col_grid < matrix.n_cols) & (band != 0)
        diag_of, rows = np.nonzero(valid)
        rows_list.append(rows)
        cols_list.append(rows + offsets[diag_of])
        vals_list.append(band[diag_of, rows])
    rows = np.concatenate(rows_list) if rows_list else np.zeros(0, INDEX_DTYPE)
    cols = np.concatenate(cols_list) if cols_list else np.zeros(0, INDEX_DTYPE)
    vals = (
        np.concatenate(vals_list)
        if vals_list
        else np.zeros(0, dtype=matrix.dtype)
    )
    csr = CSRMatrix.from_triplets(rows, cols, vals, matrix.shape)
    cost = ConversionCost(
        FormatName.BDIA,
        FormatName.CSR,
        csr.nnz,
        touched_slots=matrix.padded_size + 3 * csr.nnz,
    )
    return csr, cost


def csr_to_hyb(
    matrix: CSRMatrix, ell_width: Optional[int] = None
) -> Tuple[HYBMatrix, ConversionCost]:
    """Split at ``ell_width``: the CuSparse heuristic (default: the width
    covering at least 2/3 of rows) keeps the regular part in ELL."""
    degrees = matrix.row_degrees()
    if ell_width is None:
        # Guard the empty-degrees case *before* np.percentile: an all-empty
        # or zero-row matrix must not warn or produce a NaN width.
        if matrix.nnz == 0 or degrees.size == 0:
            ell_width = 0
        else:
            ell_width = int(np.percentile(degrees, 67))
    ell_width = max(int(ell_width), 0)

    n_rows = matrix.n_rows
    indices = np.zeros((ell_width, n_rows), dtype=INDEX_DTYPE)
    data = np.zeros((ell_width, n_rows), dtype=matrix.dtype)
    if matrix.nnz:
        row_of = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), degrees)
        # Rank of each entry within its row decides the ELL/COO split.
        rank = np.arange(matrix.nnz, dtype=INDEX_DTYPE) - np.repeat(
            matrix.ptr[:-1], degrees
        )
        in_ell = rank < ell_width
        indices[rank[in_ell], row_of[in_ell]] = matrix.indices[in_ell]
        data[rank[in_ell], row_of[in_ell]] = matrix.data[in_ell]
        ell_nnz = int(np.count_nonzero(in_ell))
        overflow = ~in_ell
        coo = COOMatrix(
            row_of[overflow],
            matrix.indices[overflow],
            matrix.data[overflow],
            matrix.shape,
        )
    else:
        ell_nnz = 0
        coo = COOMatrix(
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=matrix.dtype),
            matrix.shape,
        )
    ell = ELLMatrix(indices, data, matrix.shape, ell_nnz)
    hyb = HYBMatrix(ell, coo)
    cost = ConversionCost(
        FormatName.CSR,
        FormatName.HYB,
        matrix.nnz,
        touched_slots=2 * matrix.nnz + 2 * ell.padded_size + 3 * coo.nnz,
    )
    return hyb, cost


def hyb_to_csr(matrix: HYBMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    """Merge both parts back into a single CSR matrix."""
    ell_csr, ell_cost = ell_to_csr(matrix.ell_part)
    rows = np.concatenate(
        [
            np.repeat(
                np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
                ell_csr.row_degrees(),
            ),
            matrix.coo_part.rows,
        ]
    )
    cols = np.concatenate([ell_csr.indices, matrix.coo_part.cols])
    vals = np.concatenate([ell_csr.data, matrix.coo_part.data])
    csr = CSRMatrix.from_triplets(rows, cols, vals, matrix.shape)
    cost = ConversionCost(
        FormatName.HYB,
        FormatName.CSR,
        csr.nnz,
        touched_slots=ell_cost.touched_slots + 4 * matrix.coo_part.nnz,
    )
    return csr, cost


def convert(
    matrix: SparseMatrix,
    target: FormatName,
    fill_budget: Optional[float] = DEFAULT_FILL_BUDGET,
    **options: object,
) -> Tuple[SparseMatrix, ConversionCost]:
    """Convert ``matrix`` to ``target``, routing through CSR when needed.

    This is the single entry point the tuner's execute-and-measure path uses;
    any-to-any support keeps the AMG integration simple (operators arrive in
    whatever format the previous level chose).
    """
    if matrix.format_name is target:
        return matrix, ConversionCost(target, target, matrix.nnz, 0)
    CONVERSION_EVENTS.increment()
    with obs.span(
        "convert",
        source=matrix.format_name.value,
        target=target.value,
        nnz=int(matrix.nnz),
    ):
        return _convert(matrix, target, fill_budget, options)


def _convert(
    matrix: SparseMatrix,
    target: FormatName,
    fill_budget: Optional[float],
    options: dict,
) -> Tuple[SparseMatrix, ConversionCost]:
    if isinstance(matrix, CSRMatrix):
        csr, to_csr_cost = matrix, None
    else:
        csr, to_csr_cost = _any_to_csr(matrix)

    if target is FormatName.CSR:
        out, out_cost = csr, ConversionCost(
            FormatName.CSR, FormatName.CSR, csr.nnz, 0
        )
    elif target is FormatName.COO:
        out, out_cost = csr_to_coo(csr)
    elif target is FormatName.DIA:
        out, out_cost = csr_to_dia(csr, fill_budget=fill_budget)
    elif target is FormatName.ELL:
        out, out_cost = csr_to_ell(csr, fill_budget=fill_budget)
    elif target is FormatName.BCSR:
        block_shape = options.get("block_shape", (2, 2))
        out, out_cost = csr_to_bcsr(
            csr, block_shape=block_shape, fill_budget=fill_budget  # type: ignore[arg-type]
        )
    elif target is FormatName.HYB:
        out, out_cost = csr_to_hyb(
            csr, ell_width=options.get("ell_width")  # type: ignore[arg-type]
        )
    elif target is FormatName.CSC:
        out, out_cost = csr_to_csc(csr)
    elif target is FormatName.BDIA:
        out, out_cost = csr_to_bdia(csr, fill_budget=fill_budget)
    elif target is FormatName.SKY:
        out, out_cost = csr_to_sky(csr, fill_budget=fill_budget)
    else:  # pragma: no cover - exhaustive over FormatName
        raise ConversionError(f"no conversion to {target}")

    slots = out_cost.touched_slots + (
        to_csr_cost.touched_slots if to_csr_cost else 0
    )
    return out, ConversionCost(matrix.format_name, target, out.nnz, slots)


def _any_to_csr(matrix: SparseMatrix) -> Tuple[CSRMatrix, ConversionCost]:
    if isinstance(matrix, COOMatrix):
        return coo_to_csr(matrix)
    if isinstance(matrix, DIAMatrix):
        return dia_to_csr(matrix)
    if isinstance(matrix, ELLMatrix):
        return ell_to_csr(matrix)
    if isinstance(matrix, BCSRMatrix):
        return bcsr_to_csr(matrix)
    if isinstance(matrix, HYBMatrix):
        return hyb_to_csr(matrix)
    if isinstance(matrix, CSCMatrix):
        return csc_to_csr(matrix)
    if isinstance(matrix, SKYMatrix):
        return sky_to_csr(matrix)
    from repro.formats.bdia import BDIAMatrix

    if isinstance(matrix, BDIAMatrix):
        return bdia_to_csr(matrix)
    raise ConversionError(f"cannot convert {type(matrix).__name__} to CSR")


def conversion_cost(
    source: FormatName, target: FormatName, csr: CSRMatrix
) -> float:
    """Estimate (without building the target) the conversion cost in
    CSR-SpMV units; used by the cost model and the Table 3 accounting."""
    if source is target:
        return 0.0
    nnz = max(csr.nnz, 1)
    if target is FormatName.COO or source is FormatName.COO:
        return (3 * nnz) / (2 * nnz)
    if target is FormatName.DIA:
        padded = int(csr.diagonal_offsets().shape[0]) * csr.n_rows
        return (2 * nnz + padded) / (2 * nnz)
    if target is FormatName.ELL:
        degrees = csr.row_degrees()
        max_rd = int(degrees.max()) if degrees.size else 0
        padded = max_rd * csr.n_rows
        return (2 * nnz + 2 * padded) / (2 * nnz)
    return (4 * nnz) / (2 * nnz)
