"""BCSR (Block Compressed Sparse Row) — register-blocking extension format.

The paper lists BCSR among the "blocking variants" derivable from the basic
four (Section 2.1) and cites OSKI/SPARSITY, which tune its block size.  It is
included here to exercise SMAT's extensibility path: a fifth format with its
own kernels and conversion, registered without touching the tuner core.

Layout: the matrix is tiled into ``r x c`` blocks aligned to the block grid;
any block containing at least one non-zero is stored densely.  ``block_ptr``
and ``block_cols`` form a CSR over block rows; ``blocks[k]`` is the dense
``r x c`` payload of the ``k``-th stored block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName


@register_format(FormatName.BCSR)
class BCSRMatrix(SparseMatrix):
    """Block-CSR sparse matrix with fixed ``r x c`` dense blocks."""

    def __init__(
        self,
        block_ptr: np.ndarray,
        block_cols: np.ndarray,
        blocks: np.ndarray,
        shape: Tuple[int, int],
        nnz: int,
    ) -> None:
        blocks = np.asarray(blocks)
        super().__init__(shape, blocks.dtype)
        block_ptr = np.asarray(block_ptr, dtype=INDEX_DTYPE)
        block_cols = np.asarray(block_cols, dtype=INDEX_DTYPE)
        if blocks.ndim != 3:
            raise FormatError(
                f"blocks must be (nblocks, r, c), got shape {blocks.shape}"
            )
        r, c = int(blocks.shape[1]), int(blocks.shape[2])
        if r <= 0 or c <= 0:
            raise FormatError(f"block dims must be positive, got ({r}, {c})")
        n_block_rows = -(-self.n_rows // r)
        n_block_cols = -(-self.n_cols // c)
        if block_ptr.shape[0] != n_block_rows + 1:
            raise FormatError(
                f"block_ptr must have {n_block_rows + 1} entries, "
                f"got {block_ptr.shape[0]}"
            )
        if block_cols.shape[0] != blocks.shape[0]:
            raise FormatError("block_cols length must match number of blocks")
        if block_cols.size and (
            block_cols.min() < 0 or block_cols.max() >= n_block_cols
        ):
            raise FormatError("block column indices out of range")
        if not 0 <= int(nnz) <= blocks.size:
            raise FormatError(f"nnz={nnz} inconsistent with block storage")
        self.block_ptr = block_ptr
        self.block_cols = block_cols
        self.blocks = blocks
        self.block_shape = (r, c)
        self._nnz = int(nnz)

    def _refresh_values(self, csr) -> "BCSRMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            r, c = self.block_shape
            n_block_cols = -(-self.n_cols // c)
            # Stored blocks are sorted by (block row, block column), so
            # each entry's block index recovers via one binary search.
            stored_keys = (
                np.repeat(
                    np.arange(self.n_block_rows, dtype=np.int64),
                    np.diff(self.block_ptr),
                )
                * n_block_cols
                + self.block_cols
            )
            row_of = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), csr.row_degrees()
            )
            key = (row_of // r).astype(np.int64) * n_block_cols + (
                csr.indices // c
            )
            inverse = np.searchsorted(stored_keys, key)
            plan = (inverse, row_of % r, csr.indices % c)
            self._refresh_plan = plan
        inverse, rr, cc = plan
        if rr.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure scatters {rr.shape[0]}"
            )
        blocks = np.zeros_like(self.blocks)
        blocks[inverse, rr, cc] = csr.data
        out = BCSRMatrix(
            self.block_ptr, self.block_cols, blocks, self.shape, self._nnz
        )
        out._refresh_plan = plan
        return out

    @property
    def n_block_rows(self) -> int:
        return int(self.block_ptr.shape[0]) - 1

    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def nnz(self) -> int:
        return self._nnz

    def fill_ratio(self) -> float:
        """Fraction of stored block slots that are true non-zeros."""
        if self.blocks.size == 0:
            return 1.0
        return self.nnz / self.blocks.size

    def to_dense(self) -> np.ndarray:
        r, c = self.block_shape
        padded = np.zeros(
            (self.n_block_rows * r, -(-self.n_cols // c) * c), dtype=self.dtype
        )
        for brow in range(self.n_block_rows):
            start, end = int(self.block_ptr[brow]), int(self.block_ptr[brow + 1])
            for k in range(start, end):
                bcol = int(self.block_cols[k])
                padded[brow * r : (brow + 1) * r, bcol * c : (bcol + 1) * c] = (
                    self.blocks[k]
                )
        return padded[: self.n_rows, : self.n_cols]

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference block-row SpMV: one small dense GEMV per block."""
        x = self.check_operand(x)
        r, c = self.block_shape
        x_padded = np.zeros(-(-self.n_cols // c) * c, dtype=self.dtype)
        x_padded[: self.n_cols] = x
        y = np.zeros(self.n_block_rows * r, dtype=self.dtype)
        for brow in range(self.n_block_rows):
            start, end = int(self.block_ptr[brow]), int(self.block_ptr[brow + 1])
            acc = y[brow * r : (brow + 1) * r]
            for k in range(start, end):
                bcol = int(self.block_cols[k])
                acc += self.blocks[k] @ x_padded[bcol * c : (bcol + 1) * c]
        return y[: self.n_rows]

    def memory_bytes(self) -> int:
        return int(
            self.block_ptr.nbytes + self.block_cols.nbytes + self.blocks.nbytes
        )
