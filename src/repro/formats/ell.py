"""ELL (ELLPACK) format — for matrices with near-uniform row degrees.

Layout (Figure 2d): non-zeros are packed left inside each row, and the packed
``n_rows x max_RD`` dense matrix is stored column-major — ``data[n, i]`` is
the ``n``-th packed element of row ``i``.  Rows shorter than ``max_RD`` are
padded with zero values pointing at column 0, so the kernel needs no branch:
``y[i] += 0 * x[0]`` is harmless.

ELL wins on regular matrices (vectorizes perfectly across rows) and loses when
``max_RD`` far exceeds the average row degree — the padding explosion the
``ER_ELL`` and ``var_RD`` features quantify.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName


@register_format(FormatName.ELL)
class ELLMatrix(SparseMatrix):
    """ELLPACK sparse matrix with column-major packed storage."""

    def __init__(
        self,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        nnz: int,
    ) -> None:
        data = np.asarray(data)
        super().__init__(shape, data.dtype)
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        if data.ndim != 2 or indices.ndim != 2:
            raise FormatError(
                f"ELL arrays must be 2-D, got data {data.shape}, "
                f"indices {indices.shape}"
            )
        if data.shape != indices.shape:
            raise FormatError(
                f"ELL data/indices shape mismatch: {data.shape} vs "
                f"{indices.shape}"
            )
        if data.shape[1] != self.n_rows:
            raise FormatError(
                f"ELL arrays must have n_rows={self.n_rows} columns "
                f"(column-major layout), got {data.shape[1]}"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_cols):
            raise FormatError("ELL column indices out of range")
        if not 0 <= int(nnz) <= data.size:
            raise FormatError(f"nnz={nnz} inconsistent with ELL array size")
        self.indices = indices
        self.data = data
        self._nnz = int(nnz)

    @classmethod
    def _from_validated(
        cls,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        nnz: int,
    ) -> "ELLMatrix":
        """Internal: adopt already-canonical packed arrays unchecked.

        Only the delta-patch path uses this — the arrays are copies of an
        existing validated operand with a handful of rows re-scattered
        from a validated CSR, so the constructor's full min/max range
        sweep would be pure overhead on what is meant to be an O(delta)
        operation.
        """
        out = cls.__new__(cls)
        SparseMatrix.__init__(out, shape, data.dtype)
        out.indices = indices
        out.data = data
        out._nnz = int(nnz)
        return out

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ELLMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise FormatError(f"dense matrix must be 2-D, got {dense.ndim}-D")
        n_rows, n_cols = dense.shape
        degrees = (dense != 0).sum(axis=1)
        max_rd = int(degrees.max()) if n_rows else 0
        indices = np.zeros((max_rd, n_rows), dtype=INDEX_DTYPE)
        data = np.zeros((max_rd, n_rows), dtype=dense.dtype)
        for i in range(n_rows):
            cols = np.nonzero(dense[i])[0]
            indices[: cols.shape[0], i] = cols
            data[: cols.shape[0], i] = dense[i, cols]
        return cls(indices, data, dense.shape, int(degrees.sum()))

    def _refresh_values(self, csr) -> "ELLMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            degrees = csr.row_degrees()
            row_of = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), degrees
            )
            slot = np.arange(csr.nnz, dtype=INDEX_DTYPE) - np.repeat(
                csr.ptr[:-1], degrees
            )
            plan = (slot, row_of)
            self._refresh_plan = plan
        slot, row_of = plan
        if row_of.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure scatters {row_of.shape[0]}"
            )
        data = np.zeros_like(self.data)
        data[slot, row_of] = csr.data
        out = ELLMatrix(self.indices, data, self.shape, self._nnz)
        out._refresh_plan = plan
        return out

    @property
    def max_row_degree(self) -> int:
        """Width of the packed matrix (the paper's max_RD)."""
        return int(self.data.shape[0])

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def padded_size(self) -> int:
        """Total stored slots including padding (max_RD * n_rows)."""
        return int(self.data.size)

    def fill_ratio(self) -> float:
        """Fraction of stored slots holding real non-zeros (ER_ELL)."""
        if self.padded_size == 0:
            return 1.0
        return self.nnz / self.padded_size

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        for n in range(self.max_row_degree):
            mask = self.data[n] != 0
            rows = np.nonzero(mask)[0]
            dense[rows, self.indices[n, rows]] += self.data[n, rows]
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference column-loop SpMV (Figure 2d): whole columns at a time."""
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        for n in range(self.max_row_degree):
            y += self.data[n] * x[self.indices[n]]
        return y

    def memory_bytes(self) -> int:
        return int(self.indices.nbytes + self.data.nbytes)
