"""Sparse-matrix storage formats (Section 2.1 of the paper).

The four basic formats — CSR, COO, DIA, ELL — are implemented from scratch
on top of NumPy arrays, with the exact memory layouts the paper's Figure 2
uses (DIA is diagonal-major indexed by row; ELL is column-major).  BCSR and
HYB demonstrate the extensibility story of Section 3.
"""

from repro.formats.base import SparseMatrix, register_format, resolve_format
from repro.formats.bcsr import BCSRMatrix
from repro.formats.bdia import BDIAMatrix
from repro.formats.convert import ConversionCost, convert, conversion_cost
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.sky import SKYMatrix

__all__ = [
    "BCSRMatrix",
    "BDIAMatrix",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "ConversionCost",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "SKYMatrix",
    "SparseMatrix",
    "conversion_cost",
    "convert",
    "register_format",
    "resolve_format",
]
