"""COO (COOrdinate) format — favoured by power-law graph matrices.

Layout (Figure 2b): three parallel arrays ``rows``, ``cols``, ``data``.
The paper notes COO "usually performs better in large scale graph analysis
applications" because its performance is insensitive to row-degree skew:
work is proportional to nnz regardless of how unevenly rows fill.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.types import INDEX_DTYPE, FormatName
from repro.util.validation import check_1d, check_index_range, check_same_length


@register_format(FormatName.COO)
class COOMatrix(SparseMatrix):
    """Coordinate-format sparse matrix.

    Entries are stored in row-major sorted order (the order a CSR traversal
    would produce).  Duplicates are allowed by the format definition and sum
    during SpMV, but the converters never produce them.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        data = np.asarray(data)
        super().__init__(shape, data.dtype)
        rows = check_1d("rows", np.asarray(rows, dtype=INDEX_DTYPE))
        cols = check_1d("cols", np.asarray(cols, dtype=INDEX_DTYPE))
        data = check_1d("data", data)
        check_same_length(("rows", "cols", "data"), (rows, cols, data))
        check_index_range("rows", rows, self.n_rows)
        check_index_range("cols", cols, self.n_cols)

        if rows.size and np.any(np.diff(rows) < 0):
            order = np.lexsort((cols, rows))
            rows, cols, data = rows[order], cols[order], data[order]

        self.rows = rows
        self.cols = cols
        self.data = data

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense)
        rows, cols = np.nonzero(dense)
        return cls(
            rows.astype(INDEX_DTYPE),
            cols.astype(INDEX_DTYPE),
            dense[rows, cols],
            dense.shape,
        )

    def _refresh_values(self, csr) -> "COOMatrix":
        # CSR stores entries in exactly the row-major order the COO
        # converter produced, so the new data array maps over verbatim.
        if csr.nnz != self.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure has {self.nnz}"
            )
        return COOMatrix(self.rows, self.cols, csr.data.copy(), self.shape)

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference element-loop SpMV (Figure 2b): one scatter per nnz."""
        x = self.check_operand(x)
        y = np.zeros(self.n_rows, dtype=self.dtype)
        np.add.at(y, self.rows, self.data * x[self.cols])
        return y

    def memory_bytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes + self.data.nbytes)
