"""Sparse linear-algebra operations on CSR matrices.

The AMG substrate needs more than SpMV: transposes for the restriction
operator, sparse-times-sparse for the Galerkin product ``P^T A P``, and a
few element-wise helpers.  Everything here is vectorized — these run on
operators with 10^5+ rows inside the Table 4 bench.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.csr import CSRMatrix
from repro.types import INDEX_DTYPE


def transpose(matrix: CSRMatrix) -> CSRMatrix:
    """``A^T`` as a new CSR matrix."""
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    return CSRMatrix.from_triplets(
        matrix.indices, rows, matrix.data, (matrix.n_cols, matrix.n_rows)
    )


def matmul(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """``A @ B`` for CSR operands.

    One fully-vectorized expansion pass: every stored ``A[i, k]`` spawns the
    whole row ``B[k, :]`` scaled by the entry; :class:`CSRMatrix`'s
    canonicalising constructor merges the duplicates.  Memory is
    proportional to the number of *partial* products — fine for the
    short-row operators AMG produces.
    """
    if a.n_cols != b.n_rows:
        raise FormatError(
            f"matmul dimension mismatch: {a.shape} @ {b.shape}"
        )
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix(
            np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=a.dtype),
            (a.n_rows, b.n_cols),
        )

    b_degrees = np.diff(b.ptr)
    counts = b_degrees[a.indices]  # expansion width per A entry
    total = int(counts.sum())
    if total == 0:
        return CSRMatrix(
            np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=INDEX_DTYPE),
            np.zeros(0, dtype=a.dtype),
            (a.n_rows, b.n_cols),
        )

    a_rows = np.repeat(
        np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_degrees()
    )
    out_rows = np.repeat(a_rows, counts)
    # Flat positions into B's arrays for every partial product.
    starts = b.ptr[a.indices]
    base = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                     counts)
    flat = base + np.arange(total, dtype=INDEX_DTYPE)
    out_cols = b.indices[flat]
    out_vals = np.repeat(a.data, counts) * b.data[flat]
    return CSRMatrix.from_triplets(
        out_rows, out_cols, out_vals, (a.n_rows, b.n_cols)
    )


def triple_product(p: CSRMatrix, a: CSRMatrix) -> CSRMatrix:
    """The Galerkin coarse operator ``P^T A P``."""
    return matmul(transpose(p), matmul(a, p))


def diagonal(matrix: CSRMatrix) -> np.ndarray:
    """The main diagonal as a dense vector (zeros where unset)."""
    diag = np.zeros(min(matrix.shape), dtype=matrix.dtype)
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )
    mask = rows == matrix.indices
    diag_rows = rows[mask]
    keep = diag_rows < diag.shape[0]
    diag[diag_rows[keep]] = matrix.data[mask][keep]
    return diag


def scale_rows(matrix: CSRMatrix, factors: np.ndarray) -> CSRMatrix:
    """``diag(factors) @ A`` — used by interpolation weight normalisation."""
    factors = np.asarray(factors, dtype=matrix.dtype)
    if factors.shape[0] != matrix.n_rows:
        raise FormatError(
            f"row scale needs {matrix.n_rows} factors, got {factors.shape[0]}"
        )
    data = matrix.data * np.repeat(factors, matrix.row_degrees())
    return CSRMatrix(matrix.ptr.copy(), matrix.indices.copy(), data,
                     matrix.shape)


def extract_columns(
    matrix: CSRMatrix, keep: np.ndarray
) -> Tuple[CSRMatrix, np.ndarray]:
    """Restrict to the columns flagged in boolean mask ``keep``.

    Returns the restricted matrix (with columns renumbered densely) and the
    old-index -> new-index map (-1 for dropped columns).  Used to build
    tentative interpolation from the coarse-point selection.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape[0] != matrix.n_cols:
        raise FormatError(
            f"column mask needs {matrix.n_cols} entries, got {keep.shape[0]}"
        )
    col_map = np.full(matrix.n_cols, -1, dtype=INDEX_DTYPE)
    col_map[keep] = np.arange(int(keep.sum()), dtype=INDEX_DTYPE)

    entry_keep = keep[matrix.indices]
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_degrees()
    )[entry_keep]
    cols = col_map[matrix.indices[entry_keep]]
    vals = matrix.data[entry_keep]
    restricted = CSRMatrix.from_triplets(
        rows, cols, vals, (matrix.n_rows, int(keep.sum()))
    )
    return restricted, col_map
