"""HYB (hybrid ELL + COO) — the CuSparse-style extension format.

Section 8 discusses HYB as a statically-split hybrid: the regular part of
every row (up to a width threshold) goes into ELL, overflow entries go into
COO.  Included to demonstrate SMAT extensibility and to serve as a baseline
in the ablation benches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix
from repro.types import INDEX_DTYPE, FormatName


@register_format(FormatName.HYB)
class HYBMatrix(SparseMatrix):
    """Hybrid matrix: ``ell_part`` holds the regular width, ``coo_part``
    the overflow.  Both parts share the logical shape of the whole matrix."""

    def __init__(self, ell_part: ELLMatrix, coo_part: COOMatrix) -> None:
        if ell_part.shape != coo_part.shape:
            raise FormatError(
                f"HYB parts disagree on shape: ELL {ell_part.shape} vs "
                f"COO {coo_part.shape}"
            )
        if ell_part.dtype != coo_part.dtype:
            raise FormatError(
                f"HYB parts disagree on dtype: {ell_part.dtype} vs "
                f"{coo_part.dtype}"
            )
        super().__init__(ell_part.shape, ell_part.dtype)
        self.ell_part = ell_part
        self.coo_part = coo_part

    @property
    def nnz(self) -> int:
        return self.ell_part.nnz + self.coo_part.nnz

    @property
    def ell_width(self) -> int:
        """The split threshold: rows wider than this overflow into COO."""
        return self.ell_part.max_row_degree

    def _refresh_values(self, csr) -> "HYBMatrix":
        plan = getattr(self, "_refresh_plan", None)
        if plan is None:
            degrees = csr.row_degrees()
            row_of = np.repeat(
                np.arange(csr.n_rows, dtype=INDEX_DTYPE), degrees
            )
            rank = np.arange(csr.nnz, dtype=INDEX_DTYPE) - np.repeat(
                csr.ptr[:-1], degrees
            )
            in_ell = rank < self.ell_width
            plan = (rank[in_ell], row_of[in_ell], in_ell)
            self._refresh_plan = plan
        ell_rank, ell_rows, in_ell = plan
        if in_ell.shape[0] != csr.nnz:
            raise FormatError(
                f"refresh_values nnz mismatch: source has {csr.nnz}, "
                f"stored structure splits {in_ell.shape[0]}"
            )
        ell_data = np.zeros_like(self.ell_part.data)
        ell_data[ell_rank, ell_rows] = csr.data[in_ell]
        ell = ELLMatrix(
            self.ell_part.indices, ell_data, self.shape, self.ell_part.nnz
        )
        coo = COOMatrix(
            self.coo_part.rows,
            self.coo_part.cols,
            csr.data[~in_ell],
            self.shape,
        )
        out = HYBMatrix(ell, coo)
        out._refresh_plan = plan
        return out

    def to_dense(self) -> np.ndarray:
        return self.ell_part.to_dense() + self.coo_part.to_dense()

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: ELL pass then COO scatter for the overflow."""
        x = self.check_operand(x)
        return self.ell_part.spmv(x) + self.coo_part.spmv(x)

    def memory_bytes(self) -> int:
        return self.ell_part.memory_bytes() + self.coo_part.memory_bytes()

    def split_fractions(self) -> Tuple[float, float]:
        """(fraction of nnz in ELL, fraction in COO)."""
        total = self.nnz
        if total == 0:
            return (1.0, 0.0)
        return (self.ell_part.nnz / total, self.coo_part.nnz / total)
