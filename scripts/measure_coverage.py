#!/usr/bin/env python
"""Measure line coverage of ``repro`` under the test suite, stdlib-only.

CI enforces a ``--cov-fail-under`` floor with pytest-cov; this script is
how that floor is (re)measured in environments where coverage.py is not
installed.  It runs pytest under ``sys.settrace``, records which lines
of ``src/repro`` execute, and divides by the executable-line count from
the compiled code objects (``co_lines``), which is the same denominator
coverage.py uses for plain line coverage.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Pass a subset (e.g. a single test file) for a quick look; the CI floor
must be measured over the full tier-1 run (no extra args).
"""

from __future__ import annotations

import dis
import os
import sys
import threading
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src" / "repro")

#: Filename prefix of kernels the codegen backend exec-compiles (see
#: ``repro.kernels.codegen.GENERATED_FILE_PREFIX``).  Their frames carry
#: synthetic filenames, so they must be recognized explicitly — the old
#: ``startswith(SRC)`` test silently dropped them, under-reporting how
#: much generated code the suite actually exercises.
GENERATED_PREFIX = "<repro-codegen:"

_executed = defaultdict(set)
#: Lines traced inside exec-compiled generated kernels, keyed by their
#: synthetic ``<repro-codegen:HASH>`` filename.  Reported separately and
#: excluded from the file-coverage ratio (there is no source file on disk
#: to take a denominator from; ``repro/kernels/templates.py`` is the
#: origin of every one of these code objects).
_generated_lines = defaultdict(set)
_lock = threading.Lock()


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if filename.startswith(GENERATED_PREFIX):
        if event == "line":
            _generated_lines[filename].add(frame.f_lineno)
        return _trace
    if not filename.startswith(SRC):
        return None  # skip the whole frame: no per-line cost outside repro
    if event == "line":
        _executed[filename].add(frame.f_lineno)
    return _trace


def _executable_lines(path: Path) -> set:
    """Line numbers coverage.py would count: every line of every code
    object in the compiled module, docstring-only lines excluded the
    same way (they carry no executable bytecode beyond the const)."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    sys.settrace(_trace)
    threading.settrace(_trace)
    try:
        exit_code = pytest.main(["-q", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code not in (0, 5):
        print(f"warning: pytest exited {exit_code}; coverage is partial")

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted(Path(SRC).rglob("*.py")):
        executable = _executable_lines(path)
        hit = _executed.get(str(path), set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((os.path.relpath(path, REPO), len(executable), pct))

    width = max(len(name) for name, _, _ in rows)
    print(f"\n{'file':{width}s} {'lines':>6s} {'cover':>7s}")
    for name, lines, pct in rows:
        print(f"{name:{width}s} {lines:>6d} {pct:>6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':{width}s} {total_exec:>6d} {overall:>6.1f}%")
    generated_lines = sum(len(v) for v in _generated_lines.values())
    print(
        f"exec-compiled kernels (origin src/repro/kernels/templates.py): "
        f"{len(_generated_lines)} code objects, {generated_lines} lines "
        "traced — excluded from the ratio above"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
