#!/usr/bin/env python
"""Dump the worst-ratio generated kernel's source as a CI artifact.

Runs the same structured families the ``codegen/`` perfbench section
measures (DIA/BDIA banded, BCSR blocked, HYB power-law), times each
generated kernel against the generic vectorized registry kernel, and
writes a report whose tail is the **full generated source** of the
family with the *lowest* speedup — the kernel closest to losing the
beat-or-keep race.  When a codegen regression trips the perf gate, this
artifact shows exactly what the backend emitted, without anyone having
to reproduce the run.

Usage::

    PYTHONPATH=src python scripts/codegen_worst_source.py \
        [--out codegen_worst_source.txt] [--suite quick] [--repeats 3]

Exit status is 0 as long as every family generates and verifies; a
mismatch between a generated kernel and its generic counterpart exits 1
(the differential sweep should have caught it first).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.collection import banded, graphs
from repro.formats.convert import convert
from repro.kernels.base import find_kernel
from repro.kernels.codegen import generate_kernel
from repro.kernels.strategies import Strategy, strategy_set
from repro.perfbench import SUITE_SIZES
from repro.types import FormatName
from repro.util.timing import median_time


def _families(suite: str, seed: int):
    sizes = SUITE_SIZES[suite]
    n, n_diags = sizes["banded"]
    band = banded.banded_matrix(n, n_diags, seed=seed)
    power = graphs.power_law_graph(
        sizes["powerlaw"], exponent=2.2, seed=seed
    )
    return (
        ("dia_banded", band, FormatName.DIA),
        ("bdia_banded", band, FormatName.BDIA),
        ("bcsr_blocked", band, FormatName.BCSR),
        ("hyb_powerlaw", power, FormatName.HYB),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("codegen_worst_source.txt")
    )
    parser.add_argument(
        "--suite", default="quick", choices=sorted(SUITE_SIZES)
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args(argv)

    vectorize = strategy_set(Strategy.VECTORIZE)
    rows = []
    mismatched = False
    for name, source_matrix, fmt in _families(args.suite, args.seed):
        converted, _ = convert(source_matrix, fmt, fill_budget=None)
        generic = find_kernel(fmt, vectorize)
        generated = generate_kernel(converted)
        x = np.ones(converted.n_cols, dtype=converted.dtype)
        agree = np.allclose(
            generated(converted, x), generic(converted, x),
            rtol=1e-9, atol=1e-12,
        )
        mismatched = mismatched or not agree
        gen_s = median_time(
            lambda: generated(converted, x), repeats=args.repeats
        )
        base_s = median_time(
            lambda: generic(converted, x), repeats=args.repeats
        )
        rows.append({
            "family": name,
            "kernel": generated.name,
            "speedup": base_s / gen_s if gen_s > 0 else 0.0,
            "generated_s": gen_s,
            "generic_s": base_s,
            "agree": agree,
            "source": generated.source,
        })

    worst = min(rows, key=lambda r: r["speedup"])
    lines = [
        f"codegen worst-ratio report (suite {args.suite!r}, "
        f"seed {args.seed})",
        "",
        f"{'family':16s} {'speedup':>9s} {'generated':>12s} "
        f"{'generic':>12s}  verified",
    ]
    for row in rows:
        marker = " <-- worst" if row is worst else ""
        lines.append(
            f"{row['family']:16s} {row['speedup']:>8.2f}x "
            f"{row['generated_s'] * 1e6:>10.1f}us "
            f"{row['generic_s'] * 1e6:>10.1f}us  "
            f"{'yes' if row['agree'] else 'MISMATCH'}{marker}"
        )
    lines += [
        "",
        f"worst family: {row_name(worst)}",
        "--- generated source ---",
        worst["source"].rstrip(),
        "",
    ]
    args.out.write_text("\n".join(lines))
    print("\n".join(lines[: len(rows) + 3]))
    print(f"wrote {args.out}")
    if mismatched:
        print(
            "error: a generated kernel disagrees with its generic "
            "counterpart",
            file=sys.stderr,
        )
        return 1
    return 0


def row_name(row) -> str:
    return f"{row['family']} ({row['kernel']}, {row['speedup']:.2f}x)"


if __name__ == "__main__":
    sys.exit(main())
