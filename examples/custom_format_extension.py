#!/usr/bin/env python
"""Extending SMAT with a new format + kernels (Section 3's extensibility).

The paper claims SMAT is "flexible and extension-free": new formats and
implementations plug in without touching the tuner.  This example
demonstrates the full loop with the HYB (ELL+COO hybrid) extension format
that ships with the library:

1. register a new kernel variant for HYB at runtime,
2. run the scoreboard search over the *extended* HYB kernel set,
3. benchmark HYB against SMAT's four basic formats on a matrix with a
   heavy-tailed width distribution — the structure HYB was designed for.

Run:  python examples/custom_format_extension.py
"""

from __future__ import annotations

import numpy as np

from repro.collection import graphs
from repro.features import extract_features
from repro.formats import convert
from repro.formats.hyb import HYBMatrix
from repro.kernels import (
    Strategy,
    find_kernel,
    kernels_for,
    register_kernel,
    strategy_set,
)
from repro.machine import INTEL_XEON_X5680, SimulatedBackend, gflops
from repro.tuner import PerformanceTable, run_scoreboard
from repro.types import FormatName, Precision


@register_kernel(
    FormatName.HYB, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
)
def hyb_vectorized_parallel(matrix: HYBMatrix, x: np.ndarray) -> np.ndarray:
    """A user-contributed HYB kernel: parallel ELL part + parallel COO tail."""
    ell_kernel = find_kernel(
        FormatName.ELL, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
    )
    coo_kernel = find_kernel(
        FormatName.COO, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
    )
    return ell_kernel(matrix.ell_part, x) + coo_kernel(matrix.coo_part, x)


def main() -> None:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)

    print("HYB kernel library after the runtime registration:")
    for kernel in kernels_for(FormatName.HYB):
        print(f"  {kernel.name}")

    # A matrix with a regular core plus a few very heavy rows: the HYB
    # split keeps the core in ELL and shunts the tail into COO.
    matrix = graphs.circuit_matrix(8000, seed=3)
    features = extract_features(matrix)
    print(f"\ninput: {matrix.n_rows} rows, {matrix.nnz} nnz, "
          f"max_RD={features.max_rd}, aver_RD={features.aver_rd:.1f}")

    hyb, cost = convert(matrix, FormatName.HYB)
    frac_ell, frac_coo = hyb.split_fractions()
    print(f"HYB split: {frac_ell:.0%} of nnz in ELL "
          f"(width {hyb.ell_width}), {frac_coo:.0%} in COO; "
          f"conversion cost {cost.csr_spmv_units():.1f} CSR-SpMVs")

    # Scoreboard search over the extended HYB kernel set.
    table = PerformanceTable(format_name=FormatName.HYB)
    for kernel in kernels_for(FormatName.HYB):
        table.record(
            kernel.strategies, backend.measure(kernel, hyb, features)
        )
    board = run_scoreboard(table)
    print("\nscoreboard strategy scores:",
          {s.value: v for s, v in board.strategy_scores.items()})
    winner = find_kernel(FormatName.HYB, board.best_strategies)
    print(f"winning HYB kernel: {winner.name}")

    # Where does the extension land against the basic four?
    print("\nsimulated GFLOPS by format on this matrix:")
    for fmt in (FormatName.HYB, FormatName.CSR, FormatName.COO,
                FormatName.ELL):
        try:
            converted, _ = convert(matrix, fmt, fill_budget=50.0)
        except Exception:
            print(f"  {fmt.value:4s}: conversion refused (fill blow-up)")
            continue
        kernel = (
            winner if fmt is FormatName.HYB
            else find_kernel(
                fmt, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
            )
        )
        seconds = backend.measure(kernel, converted, features)
        print(f"  {fmt.value:4s}: {gflops(matrix.nnz, seconds):6.2f}")

    x = np.ones(matrix.n_cols)
    np.testing.assert_allclose(
        winner(hyb, x), matrix.spmv(x), atol=1e-9
    )
    print("\nextended kernel verified against the CSR reference.")


if __name__ == "__main__":
    main()
