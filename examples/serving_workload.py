#!/usr/bin/env python
"""Serving workload: the plan cache amortizing tuning cost under load.

Trains a small SMAT instance, wraps it in a ServingEngine, and replays a
skewed multi-client workload (many requests over a modest pool of
matrices — the shape of an iterative-solver or web-service deployment).
The scoreboard at the end shows what the serving layer buys: each
distinct matrix pays for feature extraction, the Figure-7 decision, and
format conversion exactly once; every later request for the same
structure reuses the cached plan and goes straight to the kernel.

A second stage demonstrates the failure semantics: every request gets an
end-to-end deadline, and a seeded fault plan forces the first plan
builds to fail — the engine degrades to the always-correct CSR reference
plan (metered as ``degraded_requests``), the per-fingerprint circuit
breaker stops re-tuning, and once the fault window passes a half-open
probe restores tuned serving.

Run:  python examples/serving_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.collection import generate_collection
from repro.features.extract import EXTRACTION_EVENTS
from repro.formats.convert import CONVERSION_EVENTS
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import (
    FaultPlan,
    FaultRule,
    ServeConfig,
    ServingEngine,
    build_matrix_pool,
    popularity_schedule,
    replay,
)
from repro.tuner import SMAT
from repro.types import Precision


def main() -> None:
    print("=== SMAT serving workload ===")
    print("Offline stage: training a reduced SMAT instance...")
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    smat = SMAT.train(
        generate_collection(scale=0.05, size_scale=0.4, seed=42),
        backend=backend,
    )

    pool = build_matrix_pool(16, seed=7, size_scale=0.6)
    schedule = popularity_schedule(len(pool), 200, seed=8)
    print(f"\nServing stage: {len(schedule)} requests over {len(pool)} "
          "distinct matrices, 4 client threads, 4 workers.")

    extractions = EXTRACTION_EVENTS.count
    conversions = CONVERSION_EVENTS.count
    config = ServeConfig(workers=4, queue_capacity=128, cache_entries=64)
    with ServingEngine(smat, config) as engine:
        report = replay(engine, pool, schedule, clients=4, seed=3)
        print()
        print(engine.scoreboard())

    print()
    print(f"throughput      : {report.throughput_rps:8.0f} requests/s")
    print(f"plan-cache hits : {report.cache_hit_rate:8.1%}")
    print(f"verified        : {len(report.results)}/{report.requests} "
          "products match the reference kernel")
    print(f"feature passes  : "
          f"{EXTRACTION_EVENTS.delta_since(extractions)} "
          f"(for {len(pool)} distinct matrices, not "
          f"{report.requests} requests)")
    print(f"conversions     : "
          f"{CONVERSION_EVENTS.delta_since(conversions)}")

    assert not report.errors and report.mismatches == 0
    sample = pool[0]
    x = np.ones(sample.n_cols)
    direct, _ = smat.spmv(sample, x)
    with ServingEngine(smat) as engine:
        # Every request can carry an end-to-end deadline (seconds over
        # queue wait + plan build + execute); a generous one here.
        served = engine.spmv(sample, x, deadline=30.0)
    assert np.array_equal(served.y, direct), "served != direct SMAT.spmv"
    print("\nServed results are bitwise identical to direct SMAT.spmv().")

    print("\nResilience stage: forcing the first 3 plan builds to fail...")
    faults = FaultPlan(
        [FaultRule(site="decide", kind="transient", start=0, stop=3)]
    )
    config = ServeConfig(
        workers=1, breaker_threshold=2, breaker_probe_interval=1,
        default_deadline=30.0,
    )
    with ServingEngine(smat, config, faults=faults) as engine:
        reference = sample.spmv(x, reference=True)
        for i in range(5):
            result = engine.spmv(sample, x)
            assert np.allclose(result.y, reference, atol=1e-9)
            print(f"  request {i}: "
                  + ("degraded -> CSR reference plan"
                     if result.degraded else
                     f"tuned plan ({result.format_name.value}"
                     f"/{result.kernel_name})"))
        counters = engine.metrics.snapshot()["counters"]
    print(f"  degraded_requests={counters['degraded_requests']}, "
          f"plan_build_failures={counters['plan_build_failures']}, "
          f"breaker recovered={counters['breaker_recovered']} — "
          "every request answered correctly throughout.")


if __name__ == "__main__":
    main()
