#!/usr/bin/env python
"""Serving workload: the plan cache amortizing tuning cost under load.

Trains a small SMAT instance, wraps it in a ServingEngine, and replays a
skewed multi-client workload (many requests over a modest pool of
matrices — the shape of an iterative-solver or web-service deployment).
The scoreboard at the end shows what the serving layer buys: each
distinct matrix pays for feature extraction, the Figure-7 decision, and
format conversion exactly once; every later request for the same
structure reuses the cached plan and goes straight to the kernel.

Run:  python examples/serving_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.collection import generate_collection
from repro.features.extract import EXTRACTION_EVENTS
from repro.formats.convert import CONVERSION_EVENTS
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.serve import (
    ServeConfig,
    ServingEngine,
    build_matrix_pool,
    popularity_schedule,
    replay,
)
from repro.tuner import SMAT
from repro.types import Precision


def main() -> None:
    print("=== SMAT serving workload ===")
    print("Offline stage: training a reduced SMAT instance...")
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    smat = SMAT.train(
        generate_collection(scale=0.05, size_scale=0.4, seed=42),
        backend=backend,
    )

    pool = build_matrix_pool(16, seed=7, size_scale=0.6)
    schedule = popularity_schedule(len(pool), 200, seed=8)
    print(f"\nServing stage: {len(schedule)} requests over {len(pool)} "
          "distinct matrices, 4 client threads, 4 workers.")

    extractions = EXTRACTION_EVENTS.count
    conversions = CONVERSION_EVENTS.count
    config = ServeConfig(workers=4, queue_capacity=128, cache_entries=64)
    with ServingEngine(smat, config) as engine:
        report = replay(engine, pool, schedule, clients=4, seed=3)
        print()
        print(engine.scoreboard())

    print()
    print(f"throughput      : {report.throughput_rps:8.0f} requests/s")
    print(f"plan-cache hits : {report.cache_hit_rate:8.1%}")
    print(f"verified        : {len(report.results)}/{report.requests} "
          "products match the reference kernel")
    print(f"feature passes  : "
          f"{EXTRACTION_EVENTS.delta_since(extractions)} "
          f"(for {len(pool)} distinct matrices, not "
          f"{report.requests} requests)")
    print(f"conversions     : "
          f"{CONVERSION_EVENTS.delta_since(conversions)}")

    assert not report.errors and report.mismatches == 0
    sample = pool[0]
    x = np.ones(sample.n_cols)
    direct, _ = smat.spmv(sample, x)
    with ServingEngine(smat) as engine:
        served = engine.spmv(sample, x)
    assert np.array_equal(served.y, direct), "served != direct SMAT.spmv"
    print("\nServed results are bitwise identical to direct SMAT.spmv().")


if __name__ == "__main__":
    main()
