#!/usr/bin/env python
"""Quickstart: the unified CSR interface end to end.

Trains a small SMAT instance offline (reduced synthetic collection,
simulated Intel Xeon X5680 backend), then feeds it matrices with very
different structures and shows the format + kernel it picks for each —
the paper's headline behaviour: one interface, input-adaptive execution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.collection import banded, generate_collection, graphs, grids
from repro.machine import INTEL_XEON_X5680, SimulatedBackend, gflops
from repro.tuner import SMAT
from repro.types import Precision


def main() -> None:
    print("=== SMAT quickstart ===")
    print("Offline stage: kernel search + training on a synthetic")
    print("collection (~190 matrices, simulated Intel Xeon X5680)...")
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    smat = SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=42),
        backend=backend,
    )
    print(f"  learned {len(smat.model.tailored_ruleset)} rules "
          f"(training accuracy {smat.model.training_accuracy:.1%})")
    for group in smat.model.grouped.groups:
        print(f"  {group.format_name.value:4s} group: "
              f"{len(group.rules)} rules, "
              f"confidence {group.format_confidence:.2f}")

    print("\nOnline stage: one interface, four very different matrices.")
    inputs = [
        ("2-D Poisson operator (banded)", grids.laplacian_5pt(60)),
        ("finite-element band matrix", banded.banded_matrix(4000, 9, seed=1)),
        ("uniform-degree incidence", graphs.uniform_bipartite(5000, 5000, 3, seed=2)),
        ("power-law web graph", graphs.power_law_graph(6000, exponent=2.2, seed=3)),
    ]
    for name, matrix in inputs:
        x = np.ones(matrix.n_cols)
        y, decision = smat.spmv(matrix, x)
        path = "execute-and-measure" if decision.used_fallback else "model"
        est = backend.measure(decision.kernel, decision.matrix,
                              _features(matrix))
        print(f"  {name:32s} -> {decision.format_name.value:4s} "
              f"({decision.kernel.name}), via {path}, "
              f"confidence {decision.confidence:.2f}, "
              f"{gflops(matrix.nnz, est):5.1f} simulated GFLOPS")
        reference = matrix.spmv(x)
        assert np.allclose(y, reference, atol=1e-9), "SpMV mismatch!"

    print("\nEvery product was verified against the reference CSR kernel.")


def _features(matrix):
    from repro.features import extract_features

    return extract_features(matrix)


if __name__ == "__main__":
    main()
