#!/usr/bin/env python
"""SMAT inside an algebraic multigrid solver (the paper's Section 7.4).

Builds AMG hierarchies for a 3-D Poisson problem with both coarsening
methods of Table 4, solves once with the Hypre-style CSR-only SpMV engine
and once with the SMAT engine, and reports:

* the per-level format choices (the Figure 1 story: DIA on fine grids,
  CSR on the irregular coarse ones),
* the simulated solve-time speedup (Table 4's ~1.2-1.3x).

Run:  python examples/amg_adaptive_solver.py
"""

from __future__ import annotations

import numpy as np

from repro.amg import AMGSolver, CsrEngine, SmatEngine
from repro.collection import generate_collection
from repro.collection.grids import laplacian_7pt, laplacian_9pt
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.tuner import SMAT
from repro.types import Precision


def main() -> None:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    print("Training SMAT (offline, once per architecture)...")
    smat = SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=42),
        backend=backend,
    )

    problems = [
        ("cljp  + 7-pt Laplacian", laplacian_7pt(18), "cljp"),
        ("rugeL + 9-pt Laplacian", laplacian_9pt(48), "rugeL"),
    ]
    for label, matrix, method in problems:
        print(f"\n=== {label}  ({matrix.n_rows} rows, {matrix.nnz} nnz) ===")
        rng = np.random.default_rng(7)
        x_true = rng.standard_normal(matrix.n_rows)
        b = matrix.spmv(x_true)

        results = {}
        for engine_name, engine in (
            ("Hypre AMG (CSR only)", CsrEngine(backend)),
            ("SMAT AMG (adaptive)", SmatEngine(smat)),
        ):
            solver = AMGSolver(matrix, engine=engine, coarsen_method=method)
            x, report = solver.solve(b, tol=1e-8)
            err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
            results[engine_name] = report.simulated_seconds
            print(f"  {engine_name:22s}: {report.iterations} V-cycles, "
                  f"err {err:.1e}, simulated SpMV time "
                  f"{report.simulated_seconds * 1e3:8.3f} ms")
            if "SMAT" in engine_name:
                print("    per-level formats (A-operator / P-operator):")
                for row in solver.hierarchy.format_by_level():
                    p_fmt = row["p_format"] or "-"
                    print(f"      level {row['level']}: "
                          f"{row['rows']:>7d} rows, {row['nnz']:>8d} nnz "
                          f"-> A={row['a_format']}, P={p_fmt}")

        baseline, tuned = results.values()
        print(f"  speedup from SMAT: {baseline / tuned:.2f}x "
              f"(paper reports 1.22x / 1.29x)")


if __name__ == "__main__":
    main()
