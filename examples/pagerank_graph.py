#!/usr/bin/env python
"""PageRank over a power-law web graph with a tuned SpMV backend.

The intro's data-intensive motivation: graph analytics spend their time in
SpMV over scale-free adjacency matrices, exactly where CSR does worst and
COO shines.  This example runs the same power iteration with the plain CSR
kernel and with the SMAT-prepared operator and compares the simulated
per-iteration cost.

Run:  python examples/pagerank_graph.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import pagerank
from repro.apps.pagerank import build_transition_transpose
from repro.collection import generate_collection, graphs
from repro.features import extract_features
from repro.machine import INTEL_XEON_X5680, SimulatedBackend, gflops
from repro.tuner import SMAT
from repro.types import Precision


def main() -> None:
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    print("Training SMAT (offline)...")
    smat = SMAT.train(
        generate_collection(scale=0.08, size_scale=0.4, seed=42),
        backend=backend,
    )

    print("\nBuilding a 20k-node power-law web graph...")
    graph = graphs.power_law_graph(20_000, exponent=2.1, seed=11)
    transition = build_transition_transpose(graph)
    features = extract_features(transition)
    print(f"  {graph.n_rows} nodes, {graph.nnz} edges, "
          f"power-law exponent R = {features.r:.2f}")

    # Plain CSR backend (what a CSR-only library would do).
    result_csr = pagerank(graph, tol=1e-10)

    # SMAT-prepared backend: decide once, reuse across iterations.
    prepared = smat.prepare(transition)
    result_smat = pagerank(graph, tol=1e-10, spmv=prepared)
    decision = prepared.decision

    print(f"\nSMAT chose {decision.format_name.value} "
          f"(kernel {decision.kernel.name}) for the transition matrix.")
    print(f"  converged in {result_smat.iterations} iterations "
          f"(CSR run: {result_csr.iterations})")
    top = np.argsort(result_smat.ranks)[::-1][:5]
    print(f"  top-5 hub nodes: {top.tolist()}")

    # Per-iteration simulated cost comparison.
    from repro.kernels import Strategy, find_kernel, strategy_set
    from repro.types import FormatName

    csr_kernel = find_kernel(
        FormatName.CSR, strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
    )
    csr_time = backend.measure(csr_kernel, transition, features)
    smat_time = backend.measure(decision.kernel, decision.matrix, features)
    print(f"\nSimulated per-iteration SpMV:")
    print(f"  CSR : {csr_time * 1e6:8.1f} us "
          f"({gflops(transition.nnz, csr_time):5.2f} GFLOPS)")
    print(f"  SMAT: {smat_time * 1e6:8.1f} us "
          f"({gflops(transition.nnz, smat_time):5.2f} GFLOPS)")
    print(f"  speedup: {csr_time / smat_time:.2f}x")

    np.testing.assert_allclose(
        result_csr.ranks, result_smat.ranks, atol=1e-8
    )
    print("\nRank vectors from both backends agree.")


if __name__ == "__main__":
    main()
