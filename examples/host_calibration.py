#!/usr/bin/env python
"""Calibrate the cost model to THIS machine and cross-check it.

The paper's portability claim (Section 3) is that SMAT re-tunes per
architecture. This example runs the calibration probes on the local host,
builds a simulated backend from the fitted parameters, and compares the
model's per-format predictions against actual wall-clock measurements of
the NumPy kernels — the ordering should agree even though the absolute
numbers are rough.

Run:  python examples/host_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro.collection import banded, graphs
from repro.features import extract_features
from repro.formats.convert import convert
from repro.kernels import Strategy, find_kernel, strategy_set
from repro.machine import WallClockBackend, calibrate_host, gflops
from repro.machine.costmodel import estimate_spmv_time
from repro.types import BASIC_FORMATS, FormatName, Precision


def main() -> None:
    print("Calibrating the cost model to this host (two DIA probes)...")
    result = calibrate_host(repeats=3)
    print(" ", result.describe())

    wall = WallClockBackend(repeats=3, warmup=1)
    strategies = strategy_set(Strategy.VECTORIZE)
    inputs = [
        ("banded 9-diag", banded.banded_matrix(50_000, 9, seed=1)),
        ("uniform degree-4", graphs.uniform_bipartite(50_000, 50_000, 4,
                                                      seed=2)),
    ]
    for name, matrix in inputs:
        features = extract_features(matrix)
        x = np.ones(matrix.n_cols)
        print(f"\n{name} ({matrix.n_rows} rows, {matrix.nnz} nnz):")
        print(f"  {'format':>6s} {'model GFLOPS':>14s} {'wall GFLOPS':>13s}")
        rows = []
        for fmt in BASIC_FORMATS:
            try:
                converted, _ = convert(matrix, fmt, fill_budget=50.0)
            except Exception:
                continue
            kernel = (
                find_kernel(fmt, strategies | {Strategy.ROW_BLOCK})
                if fmt in (FormatName.DIA, FormatName.ELL)
                else find_kernel(fmt, strategies)
            )
            model_s = estimate_spmv_time(
                result.architecture, fmt, features,
                Precision.DOUBLE, kernel.strategies,
            )
            wall_s = wall.measure(kernel, converted, features, x)
            rows.append((fmt, model_s, wall_s))
            print(f"  {fmt.value:>6s} {gflops(matrix.nnz, model_s):>14.2f} "
                  f"{gflops(matrix.nnz, wall_s):>13.2f}")
        model_best = min(rows, key=lambda r: r[1])[0]
        wall_best = min(rows, key=lambda r: r[2])[0]
        agreement = "agree" if model_best is wall_best else "disagree"
        print(f"  fastest: model says {model_best.value}, "
              f"wall clock says {wall_best.value} ({agreement})")


if __name__ == "__main__":
    main()
