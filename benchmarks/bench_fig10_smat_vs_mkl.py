"""Figure 10 — SMAT versus the MKL-style format-static library.

Reproduces: per-matrix speedup of SMAT over the MKL protocol (the max of
MKL's DIA/CSR/COO routines), SP and DP, on the 16 representatives, plus the
collection-wide average speedup.  Target shapes:

* maximum speedup in the several-x range (paper: 6.1x SP / 4.7x DP),
* collection-average speedup of ~2x+ (paper: 3.2x SP / 3.8x DP over all
  331 held-out matrices); the baseline applies the documented
  MKL_KERNEL_GAP like-for-like kernel factor, and adaptivity supplies the
  rest on the DIA/ELL/COO-affine matrices,
* near-1x on the CSR-affine matrices 9-12, large wins on 1-8 and 13-16.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import REP_SIZE, emit
from repro.baselines import mkl_best_time
from repro.collection import representatives
from repro.features import extract_features
from repro.machine import INTEL_XEON_X5680, SimulatedBackend
from repro.types import Precision


def smat_vs_mkl(smat, matrix, precision: Precision):
    backend = SimulatedBackend(INTEL_XEON_X5680, precision)
    features = extract_features(matrix)
    decision = smat.decide(matrix)
    smat_seconds = backend.measure(
        decision.kernel, decision.matrix, features
    )
    _, mkl_seconds, _ = mkl_best_time(matrix, backend)
    return mkl_seconds / smat_seconds, decision.format_name


@pytest.fixture(scope="module")
def speedups(smat):
    rows = []
    for spec, matrix in representatives(size_scale=REP_SIZE):
        sp, fmt = smat_vs_mkl(smat, matrix, Precision.SINGLE)
        dp, _ = smat_vs_mkl(smat, matrix, Precision.DOUBLE)
        rows.append(
            {"no": spec.index, "name": spec.name, "format": fmt.value,
             "sp": sp, "dp": dp}
        )
    return rows


def test_fig10_smat_vs_mkl(
    speedups, smat, heldout_dataset, report_dir, capsys, benchmark
) -> None:
    lines = ["Figure 10: SMAT speedup over the MKL-style baseline "
             "(max of its DIA/CSR/COO routines)"]
    lines.append(f"{'No':>3s} {'matrix':18s}{'fmt':>5s}{'SP':>8s}{'DP':>8s}")
    for row in speedups:
        lines.append(
            f"{row['no']:>3d} {row['name']:18s}{row['format']:>5s}"
            f"{row['sp']:8.2f}{row['dp']:8.2f}"
        )
    max_sp = max(r["sp"] for r in speedups)
    max_dp = max(r["dp"] for r in speedups)
    lines.append(f"max speedup: SP {max_sp:.1f}x, DP {max_dp:.1f}x "
                 f"(paper: 6.1x / 4.7x)")

    # Collection-wide average (analogue of the paper's 331-matrix average):
    # compare SMAT's chosen format against MKL's best *feature-estimated*
    # time on the held-out records.
    from repro.machine import estimate_spmv_time
    from repro.baselines.mkl_like import (
        MKL_KERNEL_GAP,
        MKL_MEASURED_FORMATS,
        _MKL_STRATEGIES,
    )

    ratios = []
    for f in heldout_dataset:
        best = f.best_format
        smat_t = estimate_spmv_time(
            INTEL_XEON_X5680, best, f, Precision.DOUBLE, _MKL_STRATEGIES
        )
        mkl_t = MKL_KERNEL_GAP * min(
            estimate_spmv_time(
                INTEL_XEON_X5680, fmt, f, Precision.DOUBLE, _MKL_STRATEGIES
            )
            for fmt in MKL_MEASURED_FORMATS
            if _feasible(fmt, f)
        )
        ratios.append(mkl_t / smat_t)
    avg = float(np.mean(ratios))
    lines.append(
        f"held-out average speedup (n={len(ratios)}): {avg:.2f}x "
        f"(paper: 3.2x SP / 3.8x DP; kernel-gap factor "
        f"{MKL_KERNEL_GAP}x, adaptivity supplies the rest)"
    )
    emit(capsys, report_dir, "fig10_smat_vs_mkl", "\n".join(lines))

    assert max_sp > 3.0
    assert max_dp > 2.0
    assert avg > 1.5
    # CSR-affine matrices gain only the kernel-quality factor (MKL also
    # runs CSR), no adaptivity bonus.
    for row in speedups:
        if 9 <= row["no"] <= 12:
            assert row["dp"] < 2.6, row

    _, matrix = representatives(size_scale=REP_SIZE)[3]
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    benchmark(lambda: mkl_best_time(matrix, backend))


def _feasible(fmt, features) -> bool:
    from repro.types import FormatName

    if features.nnz == 0:
        return fmt is FormatName.CSR
    if fmt is FormatName.DIA:
        return features.ndiags * features.m <= 50.0 * features.nnz
    if fmt is FormatName.ELL:
        return features.max_rd * features.m <= 50.0 * features.nnz
    return True
