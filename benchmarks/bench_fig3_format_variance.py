"""Figure 3 — performance variance among storage formats, 16 matrices.

Reproduces: GFLOPS of all four basic formats on the 16 representative
matrices "without meticulous implementations" (the paper uses the basic
kernels here).  Target shape: each matrix's affine format leads; the
largest best/worst gap is around 6x; DIA collapses to ~0 off its home turf.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import REP_SIZE, emit
from repro.collection import representatives
from repro.features import extract_features
from repro.kernels import Strategy, find_kernel, strategy_set
from repro.machine import gflops
from repro.types import BASIC_FORMATS, FormatName

#: Figure 3 measures un-tuned kernels; vectorize+parallel is the library
#: default implementation level (MKL-like), not the searched optimum.
STRATEGIES = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)


@pytest.fixture(scope="module")
def series(intel_backend):
    rows = []
    for spec, matrix in representatives(size_scale=REP_SIZE):
        features = extract_features(matrix)
        entry = {"no": spec.index, "name": spec.name}
        for fmt in BASIC_FORMATS:
            kernel = find_kernel(fmt, STRATEGIES)
            seconds = intel_backend.measure(kernel, None, features)
            entry[fmt.value] = gflops(matrix.nnz, seconds)
        rows.append(entry)
    return rows


def test_fig3_format_variance(series, report_dir, capsys, benchmark) -> None:
    lines = ["Figure 3: per-format GFLOPS on the 16 representatives "
             "(simulated Intel, DP)"]
    lines.append(
        f"{'No':>3s} {'matrix':18s}"
        + "".join(f"{fmt.value:>8s}" for fmt in BASIC_FORMATS)
        + f"{'best':>6s}{'gap':>7s}"
    )
    max_gap = 0.0
    for row in series:
        values = {fmt: row[fmt.value] for fmt in BASIC_FORMATS}
        best = max(values, key=lambda f: values[f])
        # The paper's "largest performance gap is about 6 times" compares
        # formats that are at all usable on the matrix; formats collapsing
        # to ~zero GFLOPS (DIA off a band structure) are off the chart.
        positive = [v for v in values.values() if v > 1.0]
        gap = max(positive) / min(positive) if len(positive) > 1 else 1.0
        max_gap = max(max_gap, gap)
        lines.append(
            f"{row['no']:>3d} {row['name']:18s}"
            + "".join(f"{values[fmt]:8.1f}" for fmt in BASIC_FORMATS)
            + f"{best.value:>6s}{gap:7.1f}"
        )
    lines.append(f"largest usable-format gap: {max_gap:.1f}x "
                 f"(paper: ~6x)")
    emit(capsys, report_dir, "fig3_format_variance", "\n".join(lines))

    # Shape assertions: the affinity groups of Figure 8 hold.
    for row in series[:4]:
        assert max(
            BASIC_FORMATS, key=lambda f: row[f.value]
        ) is FormatName.DIA, row["name"]
    for row in series[4:8]:
        assert max(
            BASIC_FORMATS, key=lambda f: row[f.value]
        ) is FormatName.ELL, row["name"]
    for row in series[12:]:
        assert max(
            BASIC_FORMATS, key=lambda f: row[f.value]
        ) is FormatName.COO, row["name"]
    assert 3.0 < max_gap < 12.0

    # Benchmark the real CSR kernel on one representative.
    _, matrix = representatives(size_scale=REP_SIZE)[0]
    kernel = find_kernel(FormatName.CSR, STRATEGIES)
    x = np.ones(matrix.n_cols)
    benchmark(lambda: kernel(matrix, x))
