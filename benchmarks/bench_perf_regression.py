"""Perf-regression bench: vectorized cold path vs the Python-loop oracles.

Pytest wrapper around :mod:`repro.perfbench` (the engine behind
``repro bench-perf``). Runs the quick suite, saves the op table to
``benchmarks/results/`` plus the machine-readable ``BENCH_perf.json``,
and asserts the acceptance gate: the CSR->ELL and CSR->DIA conversions —
the padded formats whose conversion dominates the tuner's cold path —
must beat their retained loop references by at least 5x.

Also runnable standalone (``python benchmarks/bench_perf_regression.py``),
which forwards to the ``repro bench-perf`` CLI.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro import perfbench

#: The CI gate: vectorized conversions must beat the loop oracle by this.
MIN_SPEEDUP = 5.0


def test_perf_regression_quick(report_dir, capsys, benchmark) -> None:
    report = perfbench.run_suite("quick", repeats=3)
    emit(
        capsys,
        report_dir,
        "perf_regression",
        perfbench.format_report(report),
    )
    perfbench.write_report(report, report_dir / "BENCH_perf.json")
    failures = perfbench.check_speedups(report, MIN_SPEEDUP)
    assert not failures, failures

    # The benchmarked operation: the gated CSR->ELL conversion.
    from repro.collection import banded
    from repro.formats.convert import csr_to_ell

    matrix = banded.banded_matrix(25_000, 9, seed=2013)
    benchmark(lambda: csr_to_ell(matrix, fill_budget=None))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(perfbench.main())
