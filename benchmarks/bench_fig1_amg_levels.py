"""Figure 1 — dynamic sparse structure across AMG levels.

Reproduces: the per-level A-operators of a Hypre-style AMG setup prefer
different storage formats — DIA (or COO) on the fine, strongly-diagonal
levels, CSR on the coarser irregular ones — with per-format GFLOPS printed
for each level, like the paper's bar groups.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.amg import CsrEngine, setup_hierarchy
from repro.collection.grids import laplacian_5pt
from repro.features import extract_features
from repro.kernels import Strategy, find_kernel, strategy_set
from repro.machine import gflops
from repro.types import BASIC_FORMATS, FormatName

STRATEGIES = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)


@pytest.fixture(scope="module")
def level_table(intel_backend):
    matrix = laplacian_5pt(64)  # 4096-row model problem
    hierarchy = setup_hierarchy(
        matrix, engine=CsrEngine(intel_backend), coarsen_method="rugeL"
    )
    rows = []
    for i, level in enumerate(hierarchy.levels):
        features = extract_features(level.matrix)
        entry = {
            "level": i,
            "rows": level.matrix.n_rows,
            "nnz": level.matrix.nnz,
        }
        for fmt in BASIC_FORMATS:
            kernel = find_kernel(fmt, STRATEGIES)
            seconds = intel_backend.measure(kernel, None, features)
            entry[fmt.value] = gflops(level.matrix.nnz, seconds)
        entry["best"] = max(
            BASIC_FORMATS, key=lambda f: entry[f.value]
        ).value
        rows.append(entry)
    return rows


def test_fig1_amg_level_formats(
    level_table, report_dir, capsys, benchmark
) -> None:
    lines = ["Figure 1: per-level SpMV GFLOPS in the AMG hierarchy "
             "(2-D Poisson, rugeL coarsening)"]
    lines.append(
        f"{'lvl':>4s}{'rows':>8s}{'nnz':>9s}"
        + "".join(f"{fmt.value:>8s}" for fmt in BASIC_FORMATS)
        + f"{'best':>6s}"
    )
    for row in level_table:
        lines.append(
            f"{row['level']:>4d}{row['rows']:>8d}{row['nnz']:>9d}"
            + "".join(f"{row[fmt.value]:8.1f}" for fmt in BASIC_FORMATS)
            + f"{row['best']:>6s}"
        )
    emit(capsys, report_dir, "fig1_amg_levels", "\n".join(lines))

    # Shape: the finest level prefers DIA; some coarser level prefers a
    # different format (the paper's motivation for runtime adaptivity).
    assert level_table[0]["best"] == "DIA"
    assert any(row["best"] != "DIA" for row in level_table[1:])

    # Benchmark one real fine-level DIA SpMV.
    from repro.formats.convert import csr_to_dia

    matrix = laplacian_5pt(64)
    dia, _ = csr_to_dia(matrix, fill_budget=None)
    kernel = find_kernel(FormatName.DIA, STRATEGIES)
    x = np.ones(matrix.n_cols)
    benchmark(lambda: kernel(dia, x))
