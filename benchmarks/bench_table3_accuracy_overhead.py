"""Table 3 — per-matrix decisions, accuracy, and prediction overhead.

Reproduces: for each of the 16 representatives, the model's predicted
format, what the execute-and-measure step ran (if triggered), the chosen
format, the exhaustive-search best format, right/wrong, and the overhead in
CSR-SpMV units.  Also the held-out accuracy (paper: 82-92%) and the
Section 7.3 comparison against brute-force search (paper: up to ~45x).

Target shapes:

* DIA/ELL/COO groups predict confidently (overhead ~2-5 CSR-SpMVs),
* the CSR rows 9-12 trigger the CSR+COO fallback (overhead ~15-20),
* brute force costs several times more than even the fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import REP_SIZE, emit
from repro.baselines import brute_force_search
from repro.collection import representatives
from repro.features import extract_features
from repro.tuner.smat import label_matrix
from repro.types import FormatName


@pytest.fixture(scope="module")
def table_rows(smat, intel_backend):
    rows = []
    for spec, matrix in representatives(size_scale=REP_SIZE):
        decision = smat.decide(matrix)
        features = extract_features(matrix)
        actual = label_matrix(
            matrix, features, smat.kernels, intel_backend
        )
        brute = brute_force_search(matrix, intel_backend, repeats=1)
        rows.append(
            {
                "no": spec.index,
                "name": spec.name,
                "predicted": decision.predicted_format.value,
                "executed": "+".join(
                    f.value for f in decision.measurements
                ) or "-",
                "chosen": decision.format_name.value,
                "best": actual.value,
                "right": decision.format_name is actual,
                "overhead": decision.overhead_units,
                "brute_overhead": brute.overhead_units,
                "fallback": decision.used_fallback,
            }
        )
    return rows


def test_table3_decisions_and_overhead(
    table_rows, smat, heldout_dataset, report_dir, capsys, benchmark
) -> None:
    lines = ["Table 3: SMAT decision analysis on the 16 representatives"]
    lines.append(
        f"{'No':>3s} {'matrix':18s}{'model':>7s}{'executed':>14s}"
        f"{'chosen':>8s}{'best':>6s}{'R/W':>5s}{'ovh':>7s}{'brute':>8s}"
    )
    for row in table_rows:
        lines.append(
            f"{row['no']:>3d} {row['name']:18s}"
            f"{row['predicted']:>7s}{row['executed']:>14s}"
            f"{row['chosen']:>8s}{row['best']:>6s}"
            f"{'R' if row['right'] else 'W':>5s}"
            f"{row['overhead']:7.1f}{row['brute_overhead']:8.1f}"
        )
    n_right = sum(r["right"] for r in table_rows)
    lines.append(f"representatives correct: {n_right}/16")

    # Held-out accuracy — the analogue of the paper's 331-matrix numbers.
    accuracy = smat.model.accuracy(heldout_dataset)
    lines.append(
        f"held-out model accuracy: {accuracy:.1%} "
        f"(paper: 92%/82% SP/DP Intel, 85%/82% AMD)"
    )
    avg_model = np.mean(
        [r["overhead"] for r in table_rows if not r["fallback"]]
    )
    avg_fallback_rows = [r["overhead"] for r in table_rows if r["fallback"]]
    avg_brute = np.mean([r["brute_overhead"] for r in table_rows])
    lines.append(
        f"overhead: model-hit avg {avg_model:.1f} CSR-SpMVs, "
        f"fallback avg {np.mean(avg_fallback_rows) if avg_fallback_rows else 0:.1f}, "
        f"brute-force avg {avg_brute:.1f} "
        f"(paper: ~2-5 / ~15-16 / up to ~45)"
    )
    emit(capsys, report_dir, "table3_accuracy_overhead", "\n".join(lines))

    # Shape assertions.
    assert n_right >= 12
    assert accuracy >= 0.8
    assert avg_model < 8.0
    if avg_fallback_rows:
        assert 8.0 < np.mean(avg_fallback_rows) < 35.0
        assert avg_brute > np.mean(avg_fallback_rows)
    # Model hits resolve DIA/ELL instantly (the optimistic group order).
    for row in table_rows:
        if row["chosen"] in ("DIA", "ELL") and not row["fallback"]:
            assert row["overhead"] < 8.0

    _, matrix = representatives(size_scale=REP_SIZE)[0]
    benchmark(lambda: smat.decide(matrix))
