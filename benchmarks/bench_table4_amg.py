"""Table 4 — SMAT-based AMG versus Hypre-style AMG execution time.

Reproduces: the two rows of Table 4 — ``cljp`` coarsening on a 7-point 3-D
Laplacian and ``rugeL`` on a 9-point 2-D Laplacian — solving ``A u = f`` to
fixed tolerance with the CSR-only engine ("Hypre AMG") and the SMAT engine
("SMAT AMG"), comparing the simulated solve-phase SpMV times.

Target shape: SMAT AMG wins by >= ~20% (paper: 1.22x and 1.29x).
Problem sizes default to ~1/8 of the paper's (set REPRO_BENCH_FULL=1 for
the full 125k/250k rows).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.amg import AMGSolver, CsrEngine, SmatEngine
from repro.collection.grids import laplacian_7pt, laplacian_9pt

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
#: (label, builder, coarsen method); paper sizes are 50^3 and 500^2.
PROBLEMS = [
    ("cljp 7pt", (lambda: laplacian_7pt(50 if FULL else 24)), "cljp"),
    ("rugeL 9pt", (lambda: laplacian_9pt(500 if FULL else 170)), "rugeL"),
]


@pytest.fixture(scope="module")
def results(smat, intel_backend):
    rows = []
    for label, build, method in PROBLEMS:
        matrix = build()
        rng = np.random.default_rng(1)
        b = matrix.spmv(rng.standard_normal(matrix.n_rows))
        times = {}
        iters = {}
        formats = None
        for engine_label, engine in (
            ("hypre", CsrEngine(intel_backend)),
            ("smat", SmatEngine(smat)),
        ):
            solver = AMGSolver(
                matrix, engine=engine, coarsen_method=method, seed=3
            )
            _, report = solver.solve(b, tol=1e-8, max_cycles=80)
            times[engine_label] = report.simulated_seconds
            iters[engine_label] = report.iterations
            if engine_label == "smat":
                formats = solver.hierarchy.format_by_level()
        rows.append(
            {
                "label": label,
                "rows": matrix.n_rows,
                "hypre_ms": times["hypre"] * 1e3,
                "smat_ms": times["smat"] * 1e3,
                "speedup": times["hypre"] / times["smat"],
                "cycles": iters["smat"],
                "formats": formats,
            }
        )
    return rows


def test_table4_smat_amg(results, report_dir, capsys, benchmark) -> None:
    lines = ["Table 4: SMAT-based AMG solve time (simulated SpMV ms)"]
    lines.append(
        f"{'Coarsen':>10s}{'Rows':>9s}{'Hypre AMG':>12s}{'SMAT AMG':>11s}"
        f"{'Speedup':>9s}{'V-cycles':>10s}"
    )
    for row in results:
        lines.append(
            f"{row['label']:>10s}{row['rows']:>9d}"
            f"{row['hypre_ms']:12.2f}{row['smat_ms']:11.2f}"
            f"{row['speedup']:9.2f}{row['cycles']:>10d}"
        )
    lines.append("paper: cljp 7pt 125k rows 1.22x; rugeL 9pt 250k rows 1.29x")
    lines.append("")
    lines.append("SMAT per-level formats (first problem):")
    for fmt_row in results[0]["formats"]:
        lines.append(
            f"  level {fmt_row['level']}: {fmt_row['rows']:>8d} rows "
            f"-> A={fmt_row['a_format']}, P={fmt_row['p_format'] or '-'}"
        )
    emit(capsys, report_dir, "table4_amg", "\n".join(lines))

    for row in results:
        assert row["speedup"] > 1.15, row["label"]
    # The adaptivity story: the fine level switched away from CSR.
    assert results[0]["formats"][0]["a_format"] != "CSR"

    # Benchmark a small real AMG solve end to end.
    small = laplacian_9pt(40)
    rng = np.random.default_rng(2)
    b = small.spmv(rng.standard_normal(small.n_rows))
    solver = AMGSolver(small, coarsen_method="rugeL")
    benchmark(lambda: solver.solve(b, tol=1e-8))
