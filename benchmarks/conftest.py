"""Shared bench fixtures: the trained tuner, the labelled collection, and
report writing.

Heavy artifacts (the labelled feature database and the trained model) are
built once and cached under ``benchmarks/_cache`` so re-runs are fast.
Scales are controlled by environment variables:

* ``REPRO_BENCH_SCALE``   — fraction of the 2376-matrix collection used for
  training (default 0.5; 1.0 reproduces the paper's full set).
* ``REPRO_BENCH_SIZE``    — matrix size multiplier (default 0.5).
* ``REPRO_REP_SIZE``      — representative-matrix size multiplier
  (default 0.1 of the paper's dimensions).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.collection import generate_collection
from repro.features import extract_features
from repro.io import FeatureDatabase, FeatureRecord
from repro.machine import (
    AMD_OPTERON_6168,
    INTEL_XEON_X5680,
    SimulatedBackend,
)
from repro.tuner import SMAT, search_kernels
from repro.tuner.smat import label_matrix
from repro.types import Precision

CACHE_DIR = Path(__file__).parent / "_cache"
RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_SIZE = float(os.environ.get("REPRO_BENCH_SIZE", "0.5"))
REP_SIZE = float(os.environ.get("REPRO_REP_SIZE", "0.1"))

#: Cache version: bump when the cost model or collection changes.
CACHE_TAG = f"v1_s{BENCH_SCALE}_z{BENCH_SIZE}"


@pytest.fixture(scope="session")
def intel_backend() -> SimulatedBackend:
    return SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)


@pytest.fixture(scope="session")
def amd_backend() -> SimulatedBackend:
    return SimulatedBackend(AMD_OPTERON_6168, Precision.DOUBLE)


@pytest.fixture(scope="session")
def kernels(intel_backend):
    return search_kernels(intel_backend)


@pytest.fixture(scope="session")
def labelled_db(intel_backend, kernels) -> FeatureDatabase:
    """The labelled synthetic collection (with domain info), disk-cached."""
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"features_{CACHE_TAG}.jsonl"
    db = FeatureDatabase(path)
    if path.exists():
        return db
    records = []
    for spec, matrix in generate_collection(
        scale=BENCH_SCALE, size_scale=BENCH_SIZE, seed=2013
    ):
        features = extract_features(matrix)
        label = label_matrix(matrix, features, kernels, intel_backend)
        records.append(
            FeatureRecord(
                name=spec.name,
                domain=spec.domain,
                features=features.with_label(label),
            )
        )
    db.write_all(records)
    return db


@pytest.fixture(scope="session")
def smat(labelled_db, kernels, intel_backend) -> SMAT:
    """The trained tuner (trained on a held-in split of the collection)."""
    dataset = labelled_db.to_dataset()
    train, _ = dataset.split(0.14, seed=5)
    from repro.learning import train_model

    model = train_model(train, min_leaf=8, max_depth=10)
    return SMAT(model=model, kernels=kernels, backend=intel_backend)


@pytest.fixture(scope="session")
def heldout_dataset(labelled_db):
    """The evaluation split (the paper's 331 held-out matrices)."""
    dataset = labelled_db.to_dataset()
    _, test = dataset.split(0.14, seed=5)
    return test


@pytest.fixture(scope="session")
def report_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(capsys, report_dir: Path, name: str, text: str) -> None:
    """Print a bench table to the live terminal and save it to disk."""
    (report_dir / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")
