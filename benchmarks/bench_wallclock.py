"""Wall-clock validation of the kernel library (the real-timing path).

The paper benches are driven by the simulated machine model; this bench
closes the loop by timing the *actual NumPy kernels* on this host with
:class:`repro.machine.WallClockBackend` and checking that the qualitative
kernel-library claims hold on real silicon too:

* the vectorized implementations beat the basic reference loops by large
  factors (the scoreboard must discover VECTORIZE on any host),
* the per-format wall-clock ordering on format-friendly inputs matches the
  model's (DIA fastest on banded, ELL on uniform, COO competitive on
  power-law),
* the scoreboard search completes on wall-clock measurements and never
  selects a basic kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.collection import banded, graphs
from repro.features import extract_features
from repro.formats.convert import convert
from repro.kernels import Strategy, find_kernel, kernels_for, strategy_set
from repro.machine import WallClockBackend, gflops
from repro.tuner import search_kernels
from repro.types import BASIC_FORMATS, FormatName

BACKEND = WallClockBackend(repeats=3, warmup=1)


@pytest.fixture(scope="module")
def wallclock_search():
    return search_kernels(BACKEND)


def test_wallclock_scoreboard_picks_vectorized(
    wallclock_search, report_dir, capsys, benchmark
) -> None:
    lines = ["Wall-clock kernel search on this host"]
    for fmt in BASIC_FORMATS:
        winner = wallclock_search.kernel_for(fmt)
        table = wallclock_search.tables[fmt]
        base = table.time_of(frozenset())
        best_strategies, best_seconds = table.fastest()
        lines.append(
            f"  {fmt.value:4s}: winner {winner.name:40s} "
            f"basic {base * 1e3:8.2f} ms -> best {best_seconds * 1e3:8.3f} ms "
            f"({base / best_seconds:6.1f}x)"
        )
        assert Strategy.VECTORIZE in winner.strategies, fmt
        # The reference loops lose by an order of magnitude in Python.
        assert base / best_seconds > 3.0, fmt
    emit(capsys, report_dir, "wallclock_scoreboard", "\n".join(lines))

    matrix = graphs.uniform_bipartite(2000, 2000, 4, seed=1)
    kernel = wallclock_search.kernel_for(FormatName.CSR)
    x = np.ones(2000)
    benchmark(lambda: kernel(matrix, x))


def test_wallclock_format_ordering(report_dir, capsys, benchmark) -> None:
    """Real timings: each structure's affine format is at least competitive."""
    strategies = strategy_set(Strategy.VECTORIZE, Strategy.PARALLEL)
    cases = [
        ("banded", banded.banded_matrix(60_000, 9, seed=1), FormatName.DIA),
        ("uniform", graphs.uniform_bipartite(60_000, 60_000, 4, seed=2),
         FormatName.ELL),
    ]
    lines = ["Wall-clock per-format SpMV (this host, DP)"]
    for name, matrix, expected in cases:
        features = extract_features(matrix)
        x = np.ones(matrix.n_cols)
        times = {}
        for fmt in BASIC_FORMATS:
            try:
                converted, _ = convert(matrix, fmt, fill_budget=50.0)
            except Exception:
                continue  # pathological conversion (e.g. DIA off-band)
            kernel = (
                find_kernel(fmt, strategies | {Strategy.ROW_BLOCK})
                if fmt in (FormatName.DIA, FormatName.ELL)
                else find_kernel(fmt, strategies)
            )
            times[fmt] = BACKEND.measure(kernel, converted, features, x)
        ranked = sorted(times, key=lambda f: times[f])
        lines.append(
            f"  {name:8s}: "
            + "  ".join(
                f"{fmt.value}={gflops(matrix.nnz, times[fmt]):5.2f}GF"
                for fmt in times
            )
            + f"  fastest={ranked[0].value}"
        )
        # The affine format lands in the top two on real hardware.
        assert expected in ranked[:2], (name, ranked)
    emit(capsys, report_dir, "wallclock_format_ordering", "\n".join(lines))

    matrix = cases[0][1]
    dia, _ = convert(matrix, FormatName.DIA)
    kernel = find_kernel(
        FormatName.DIA, strategies | {Strategy.ROW_BLOCK}
    )
    x = np.ones(matrix.n_cols)
    benchmark(lambda: kernel(dia, x))
