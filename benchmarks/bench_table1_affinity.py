"""Table 1 — format-affinity distribution over the collection.

Reproduces: per-application-domain counts of matrices whose measured-best
format is CSR / COO / DIA / ELL, plus the bottom percentage row.  Target
shape: CSR ~63%, COO ~21%, DIA ~9%, ELL ~7% with CSR the majority in most
domains, circuits COO-heavy, quantum chemistry DIA-heavy.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from benchmarks.conftest import emit
from repro.collection import DOMAIN_PROFILES
from repro.types import BASIC_FORMATS, FormatName

COLUMNS = (FormatName.CSR, FormatName.COO, FormatName.DIA, FormatName.ELL)


def build_table(labelled_db) -> str:
    per_domain = defaultdict(Counter)
    totals = Counter()
    for record in labelled_db:
        fmt = record.features.best_format
        per_domain[record.domain][fmt] += 1
        totals[fmt] += 1

    lines = ["Table 1: application areas and format affinity (reproduced)"]
    header = f"{'Application Domains':35s}" + "".join(
        f"{fmt.value:>6s}" for fmt in COLUMNS
    ) + f"{'Total':>7s}"
    lines.append(header)
    domain_order = [p.name for p in DOMAIN_PROFILES]
    for domain in domain_order:
        counts = per_domain.get(domain, Counter())
        total = sum(counts.values())
        lines.append(
            f"{domain:35s}"
            + "".join(f"{counts.get(fmt, 0):>6d}" for fmt in COLUMNS)
            + f"{total:>7d}"
        )
    grand_total = sum(totals.values())
    lines.append(
        f"{'Percentage':35s}"
        + "".join(
            f"{100 * totals.get(fmt, 0) / grand_total:>5.0f}%"
            for fmt in COLUMNS
        )
        + f"{grand_total:>7d}"
    )
    lines.append("paper:                                 63%   21%    9%    7%   2386")
    return "\n".join(lines)


def test_table1_affinity_distribution(
    labelled_db, report_dir, capsys, benchmark
) -> None:
    table = build_table(labelled_db)
    emit(capsys, report_dir, "table1_affinity", table)

    # Sanity: CSR is the majority format, the paper's headline motivation
    # for the CSR-based unified interface.
    totals = Counter(r.features.best_format for r in labelled_db)
    assert totals.most_common(1)[0][0] is FormatName.CSR

    # The benchmarked operation: one full-collection affinity scan.
    benchmark(lambda: Counter(r.features.best_format for r in labelled_db))
