"""Figure 9 — SMAT performance, SP & DP, Intel & AMD, 16 matrices.

Reproduces: the GFLOPS SMAT's chosen (format, kernel) reaches on each of
the 16 representatives, in single and double precision, on both platform
presets.  Target shapes:

* peaks around 51 (Intel SP) / 37 (Intel DP) / 38 (AMD SP) / 22 (AMD DP)
  — within a reasonable band, since our testbed is a model,
* up to ~5x variance across matrices,
* DIA/ELL/COO-affine matrices (No.1-8, 13-16) outperform the CSR-affine
  ones (No.9-12).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import REP_SIZE, emit
from repro.collection import representatives
from repro.features import extract_features
from repro.machine import (
    AMD_OPTERON_6168,
    INTEL_XEON_X5680,
    SimulatedBackend,
    gflops,
)
from repro.types import Precision


@pytest.fixture(scope="module")
def grid(smat):
    reps = representatives(size_scale=REP_SIZE)
    rows = []
    for spec, matrix in reps:
        decision = smat.decide(matrix)
        features = extract_features(matrix)
        entry = {
            "no": spec.index,
            "name": spec.name,
            "format": decision.format_name.value,
        }
        for platform_name, arch in (
            ("intel", INTEL_XEON_X5680), ("amd", AMD_OPTERON_6168)
        ):
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                backend = SimulatedBackend(arch, precision)
                seconds = backend.measure(
                    decision.kernel, decision.matrix, features
                )
                key = f"{platform_name}_{precision.value}"
                entry[key] = gflops(matrix.nnz, seconds)
        rows.append(entry)
    return rows


def test_fig9_smat_performance(grid, report_dir, capsys, benchmark) -> None:
    columns = ("intel_single", "intel_double", "amd_single", "amd_double")
    lines = ["Figure 9: SMAT GFLOPS on the 16 representatives (simulated)"]
    lines.append(
        f"{'No':>3s} {'matrix':18s}{'fmt':>5s}"
        + "".join(f"{c:>14s}" for c in columns)
    )
    for row in grid:
        lines.append(
            f"{row['no']:>3d} {row['name']:18s}{row['format']:>5s}"
            + "".join(f"{row[c]:14.1f}" for c in columns)
        )
    peaks = {c: max(row[c] for row in grid) for c in columns}
    lines.append(
        "peaks: "
        + ", ".join(f"{c}={v:.1f}" for c, v in peaks.items())
    )
    lines.append("paper peaks: intel SP 51, intel DP 37, amd SP 38, amd DP 22")
    emit(capsys, report_dir, "fig9_smat_performance", "\n".join(lines))

    # Shape assertions.
    assert 30.0 < peaks["intel_single"] < 75.0
    assert 15.0 < peaks["intel_double"] < 45.0
    assert 25.0 < peaks["amd_single"] < 60.0
    assert 10.0 < peaks["amd_double"] < 35.0
    # SP beats DP everywhere.
    for row in grid:
        assert row["intel_single"] > row["intel_double"]
        assert row["amd_single"] > row["amd_double"]
    # Affine formats (1-8) beat the CSR group (9-12) on Intel DP.
    csr_group = [r["intel_double"] for r in grid if 9 <= r["no"] <= 12]
    dia_ell_group = [r["intel_double"] for r in grid if r["no"] <= 8]
    assert min(dia_ell_group) > max(csr_group) * 0.8
    assert max(dia_ell_group) > max(csr_group)
    # Up-to-5x variance across matrices (paper's observation).
    intel_dp = [r["intel_double"] for r in grid]
    assert max(intel_dp) / min(intel_dp) > 3.0

    # Benchmark: the tuned kernel of the first representative, real time.
    _, matrix = representatives(size_scale=REP_SIZE)[0]
    smat_decision = None
    for row in grid:
        if row["no"] == 1:
            smat_decision = row
    x = np.ones(matrix.n_cols)
    benchmark(lambda: matrix.spmv(x))
