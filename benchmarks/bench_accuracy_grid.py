"""Section 7.3's accuracy grid: platform x precision.

"For all 331 matrices, the accuracy is 92% (SP) and 82% (DP) on Intel
platform, and 85% (SP) and 82% (DP) on AMD platform respectively."

This bench reruns the complete offline pipeline — kernel search, collection
labelling, training — independently for each of the four (platform,
precision) combinations and reports held-out accuracy, reproducing that
grid.  A reduced collection scale keeps it tractable
(``REPRO_ACC_SCALE``, default 0.2 -> ~475 matrices per cell).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import emit
from repro.collection import generate_collection
from repro.learning import train_model
from repro.machine import (
    AMD_OPTERON_6168,
    INTEL_XEON_X5680,
    SimulatedBackend,
)
from repro.tuner import search_kernels
from repro.tuner.smat import build_training_dataset
from repro.types import Precision

ACC_SCALE = float(os.environ.get("REPRO_ACC_SCALE", "0.2"))

CELLS = [
    ("intel", INTEL_XEON_X5680, Precision.SINGLE),
    ("intel", INTEL_XEON_X5680, Precision.DOUBLE),
    ("amd", AMD_OPTERON_6168, Precision.SINGLE),
    ("amd", AMD_OPTERON_6168, Precision.DOUBLE),
]

PAPER = {
    ("intel", "single"): 0.92,
    ("intel", "double"): 0.82,
    ("amd", "single"): 0.85,
    ("amd", "double"): 0.82,
}


@pytest.fixture(scope="module")
def grid():
    rows = []
    for platform_name, arch, precision in CELLS:
        backend = SimulatedBackend(arch, precision)
        kernels = search_kernels(backend)
        dataset = build_training_dataset(
            generate_collection(scale=ACC_SCALE, size_scale=0.5, seed=2013),
            kernels,
            backend,
        )
        train, test = dataset.split(0.14, seed=5)
        model = train_model(train, min_leaf=8, max_depth=10)
        rows.append(
            {
                "platform": platform_name,
                "precision": precision.value,
                "n": len(dataset),
                "accuracy": model.accuracy(test),
                "paper": PAPER[(platform_name, precision.value)],
            }
        )
    return rows


def test_accuracy_grid(grid, report_dir, capsys, benchmark) -> None:
    lines = ["Section 7.3 accuracy grid (held-out, full offline rerun "
             "per cell)"]
    lines.append(
        f"{'platform':>9s}{'precision':>11s}{'n':>6s}"
        f"{'measured':>10s}{'paper':>8s}"
    )
    for row in grid:
        lines.append(
            f"{row['platform']:>9s}{row['precision']:>11s}{row['n']:>6d}"
            f"{row['accuracy']:>9.1%}{row['paper']:>8.0%}"
        )
    emit(capsys, report_dir, "accuracy_grid", "\n".join(lines))

    # Shape: every cell lands at or above the paper's band floor; the
    # simulated testbed is cleaner than real hardware so we allow exceeding
    # the paper's numbers but not falling below ~80%.
    for row in grid:
        assert row["accuracy"] >= 0.80, row

    # Benchmark: one full training pass (the offline stage's core).
    backend = SimulatedBackend(INTEL_XEON_X5680, Precision.DOUBLE)
    kernels = search_kernels(backend)
    dataset = build_training_dataset(
        generate_collection(scale=0.02, size_scale=0.4, seed=1),
        kernels,
        backend,
    )
    benchmark(lambda: train_model(dataset, min_leaf=8, max_depth=10))
