"""Figure 6 (a-e) — distributions of beneficial matrices over parameter
intervals.

Reproduces: for each format-discriminating parameter of Table 2, the
histogram of matrices that *benefit* from the corresponding format (their
measured-best format is DIA/ELL/COO), bucketed into the paper's intervals.
Target shapes:

* (a) small Ndiags / max_RD dominate the DIA / ELL populations,
* (b) high ER_DIA / ER_ELL dominate (ER_DIA less sharply — the exception
  the paper uses to motivate NTdiags_ratio),
* (c) NTdiags_ratio separates DIA more cleanly than ER_DIA,
* (d) small var_RD dominates ELL,
* (e) COO's power-law exponent concentrates in [1, 4].
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import emit
from repro.types import FormatName
from repro.util.stats import interval_histogram


def beneficial(labelled_db, fmt: FormatName):
    return [
        r.features for r in labelled_db if r.features.best_format is fmt
    ]


@pytest.fixture(scope="module")
def populations(labelled_db):
    return {
        fmt: beneficial(labelled_db, fmt)
        for fmt in (FormatName.DIA, FormatName.ELL, FormatName.COO)
    }


def render(title: str, histogram) -> str:
    lines = [title]
    for label, fraction in zip(histogram.labels, histogram.fractions):
        bar = "#" * int(round(fraction * 40))
        lines.append(f"  {label:>14s} {100 * fraction:5.1f}% {bar}")
    return "\n".join(lines)


def test_fig6_parameter_distributions(
    populations, report_dir, capsys, benchmark
) -> None:
    dia = populations[FormatName.DIA]
    ell = populations[FormatName.ELL]
    coo = populations[FormatName.COO]
    blocks = []

    # (a) Ndiags for DIA, max_RD for ELL.
    h_ndiags = interval_histogram(
        [f.ndiags for f in dia], edges=[0, 10, 30, 100, 1000]
    )
    blocks.append(render("(a1) DIA-beneficial matrices by Ndiags", h_ndiags))
    h_maxrd = interval_histogram(
        [f.max_rd for f in ell], edges=[0, 4, 8, 16, 64]
    )
    blocks.append(render("(a2) ELL-beneficial matrices by max_RD", h_maxrd))

    # (b) Fill ratios.
    ratio_edges = [0.0, 0.25, 0.5, 0.75, 0.9]
    h_erdia = interval_histogram([f.er_dia for f in dia], ratio_edges)
    blocks.append(render("(b1) DIA-beneficial matrices by ER_DIA", h_erdia))
    h_erell = interval_histogram([f.er_ell for f in ell], ratio_edges)
    blocks.append(render("(b2) ELL-beneficial matrices by ER_ELL", h_erell))

    # (c) NTdiags_ratio.
    h_nt = interval_histogram([f.ntdiags_ratio for f in dia], ratio_edges)
    blocks.append(
        render("(c)  DIA-beneficial matrices by NTdiags_ratio", h_nt)
    )

    # (d) var_RD.
    h_var = interval_histogram(
        [f.var_rd for f in ell], edges=[0.0, 0.5, 2.0, 10.0, 100.0]
    )
    blocks.append(render("(d)  ELL-beneficial matrices by var_RD", h_var))

    # (e) power-law R for COO ('inf' = no power law).
    finite_r = [f.r for f in coo if math.isfinite(f.r)]
    h_r = interval_histogram(finite_r, edges=[0.0, 1.0, 2.0, 3.0, 4.0])
    blocks.append(
        render(
            f"(e)  COO-beneficial matrices by R "
            f"({len(finite_r)}/{len(coo)} scale-free)",
            h_r,
        )
    )

    emit(
        capsys, report_dir, "fig6_parameter_distributions",
        "Figure 6: beneficial-matrix distributions\n" + "\n".join(blocks),
    )

    # Shape assertions (the paper's stated trends).
    assert sum(h_ndiags.fractions[:2]) > 0.6  # small Ndiags favours DIA
    assert sum(h_maxrd.fractions[:2]) > 0.6  # small max_RD favours ELL
    assert h_erell.fractions[-1] > 0.5  # high fill favours ELL
    assert h_nt.fractions[-1] > 0.5  # true diagonals favour DIA
    assert sum(h_var.fractions[:2]) > 0.6  # low variance favours ELL
    # (c) vs (b1): NTdiags_ratio separates DIA more sharply than ER_DIA.
    assert h_nt.fractions[-1] >= h_erdia.fractions[-1]
    # (e): the COO population that is scale-free sits in R within [1, 4].
    if finite_r:
        in_band = sum(1 for r in finite_r if 1.0 <= r <= 4.0)
        assert in_band / len(finite_r) > 0.8

    benchmark(
        lambda: interval_histogram([f.ndiags for f in dia],
                                   [0, 10, 30, 100, 1000])
    )
