"""Value-refresh fast path vs a full retune (the tier-2 cache's payoff).

Two levels:

* format level — ``refresh_values`` (structure reused, cached scatter
  plan, values rebuilt) against a from-scratch conversion of the churned
  CSR, per target format, plus the gate measurement: refresh against the
  full retune a tier-1 miss would otherwise pay (feature extraction +
  conversion).  The gate entry is merged into ``BENCH_perf.json`` under
  ``plan/value_refresh`` so the perf trajectory tracks it.
* engine level — a value-churn workload (same structures, fresh values)
  replayed through the serving engine with the tier-2 structure index on
  vs off, comparing wall clock and plan-build counts.

The acceptance gate (also enforced by ``repro bench-perf
--assert-speedup``): refresh must beat the full retune by at least 5x.
"""

from __future__ import annotations

import json

import numpy as np

from benchmarks.conftest import emit
from repro.collection import banded, graphs
from repro.features.extract import extract_structure_features
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.types import FormatName
from repro.util.timing import median_time

#: The CI gate: value refresh must beat extraction + reconversion by this.
MIN_SPEEDUP = 5.0

#: Formats refreshed from the banded matrix; HYB prefers the power-law
#: input (a banded matrix leaves its COO spill degenerate).
BAND_TARGETS = (
    FormatName.DIA,
    FormatName.BDIA,
    FormatName.ELL,
    FormatName.BCSR,
    FormatName.SKY,
    FormatName.CSC,
    FormatName.COO,
)


def _churned(matrix: CSRMatrix) -> CSRMatrix:
    """The same sparsity structure with a fresh value array."""
    rng = np.random.default_rng(7)
    data = rng.standard_normal(matrix.nnz).astype(matrix.dtype)
    return CSRMatrix(matrix.ptr, matrix.indices, data, matrix.shape)


def test_refresh_vs_retune_gate(report_dir, capsys, benchmark) -> None:
    band = banded.banded_matrix(25_000, 9, seed=2013)
    power = graphs.power_law_graph(15_000, exponent=2.2, seed=2013)

    lines = [
        "Value refresh vs reconversion (structure reused, values rebuilt)",
        f"{'format':8s} {'refresh':>10s} {'reconvert':>10s} {'speedup':>9s}",
    ]
    cases = [(fmt, band) for fmt in BAND_TARGETS]
    cases.append((FormatName.HYB, power))
    for fmt, source in cases:
        converted, _ = convert(source, fmt, fill_budget=None)
        churned = _churned(source)
        converted.refresh_values(churned)  # prime the cached scatter plan
        refresh_s = median_time(
            lambda: converted.refresh_values(churned), repeats=3
        )
        reconvert_s = median_time(
            lambda: convert(churned, fmt, fill_budget=None), repeats=3
        )
        ratio = reconvert_s / refresh_s if refresh_s > 0 else 0.0
        lines.append(
            f"{fmt.value:8s} {refresh_s * 1e3:9.3f}m {reconvert_s * 1e3:9.3f}m"
            f" {ratio:8.1f}x"
        )
        # Refresh reuses every structure array; it must never lose to a
        # from-scratch conversion (generous slack for timing noise).
        assert ratio > 0.8, (fmt, ratio)

    # The gate measurement: refresh vs the *full retune* a tier-1 miss
    # pays without the structure index — extraction plus conversion.
    dia, _ = convert(band, FormatName.DIA, fill_budget=None)
    churned = _churned(band)
    dia.refresh_values(churned)
    refresh_s = median_time(lambda: dia.refresh_values(churned), repeats=5)
    retune_s = median_time(
        lambda: (
            extract_structure_features(churned),
            convert(churned, FormatName.DIA, fill_budget=None),
        ),
        repeats=5,
    )
    gate = retune_s / refresh_s if refresh_s > 0 else 0.0
    lines.append("")
    lines.append(
        f"gate: refresh {refresh_s * 1e3:.3f}ms vs retune "
        f"{retune_s * 1e3:.3f}ms = {gate:.1f}x (required "
        f">= {MIN_SPEEDUP:.0f}x)"
    )
    emit(capsys, report_dir, "refresh_vs_retune", "\n".join(lines))

    # Merge the gate number into BENCH_perf.json so the perf trajectory
    # includes it even when this bench runs standalone.
    bench_path = report_dir / "BENCH_perf.json"
    report = (
        json.loads(bench_path.read_text()) if bench_path.exists() else
        {"bench": "perf_regression", "ops": {}}
    )
    report["ops"]["plan/value_refresh"] = {
        "median_s": refresh_s,
        "retune_median_s": retune_s,
        "speedup_vs_retune": gate,
    }
    bench_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    assert gate >= MIN_SPEEDUP, (
        f"value refresh only {gate:.1f}x faster than a full retune "
        f"(required >= {MIN_SPEEDUP:.0f}x)"
    )

    benchmark(lambda: dia.refresh_values(churned))


def test_value_churn_serving(smat, report_dir, capsys) -> None:
    from repro.serve import (
        ServeConfig,
        ServingEngine,
        build_matrix_pool,
        churn_schedule,
        replay,
        value_churn_pool,
    )

    structures, updates = 6, 8
    base = build_matrix_pool(structures, seed=2013, size_scale=0.5)
    pool = value_churn_pool(base, updates, seed=2013)
    schedule = churn_schedule(structures, updates, seed=2013)

    def run(structure_cache: bool):
        config = ServeConfig(workers=2, structure_cache=structure_cache)
        with ServingEngine(smat, config) as engine:
            report = replay(engine, pool, schedule, clients=2, seed=99)
            counters = engine.metrics.snapshot()["counters"]
        assert not report.errors, report.errors
        assert report.mismatches == 0
        return report, counters

    fast_report, fast = run(structure_cache=True)
    slow_report, slow = run(structure_cache=False)

    expected_refreshes = structures * (updates - 1)
    assert fast["plans_refreshed"] == expected_refreshes
    assert fast["plans_built"] == structures
    assert slow["plans_refreshed"] == 0
    assert slow["plans_built"] == structures * updates

    ratio = (
        slow_report.wall_seconds / fast_report.wall_seconds
        if fast_report.wall_seconds > 0 else 0.0
    )
    emit(
        capsys,
        report_dir,
        "value_churn_serving",
        "\n".join([
            f"Value-churn serving: {structures} structures x "
            f"{updates} value updates",
            f"  tier-2 on : {fast_report.wall_seconds * 1e3:8.1f}ms wall, "
            f"{int(fast['plans_built'])} builds, "
            f"{int(fast['plans_refreshed'])} refreshes",
            f"  tier-2 off: {slow_report.wall_seconds * 1e3:8.1f}ms wall, "
            f"{int(slow['plans_built'])} builds",
            f"  wall-clock ratio: {ratio:.2f}x",
        ]),
    )
