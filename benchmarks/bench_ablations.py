"""Ablations of SMAT's design choices (DESIGN.md's candidate list).

Not a paper table — these quantify the design arguments the paper makes in
prose: ruleset over tree, rule tailoring, the confidence threshold, lazy
two-step feature extraction, the extra NTdiags_ratio/var_RD features, and
C5.0-style boosting.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import REP_SIZE, emit
from repro.collection import representatives
from repro.features.parameters import FEATURE_NAMES
from repro.learning import (
    TreeLearner,
    extract_rules,
    tailor_rules,
    train_boosted,
    train_model,
)
from repro.tuner import SMAT, SmatConfig


@pytest.fixture(scope="module")
def splits(labelled_db):
    dataset = labelled_db.to_dataset()
    return dataset.split(0.14, seed=5)


def test_ablation_ruleset_vs_tree(splits, report_dir, capsys, benchmark):
    train, test = splits
    tree = TreeLearner(min_leaf=8, max_depth=10).fit(train)
    ruleset = extract_rules(tree, train)
    model = train_model(train, min_leaf=8, max_depth=10)
    lines = [
        "Ablation 1: prediction artifact",
        f"  raw decision tree : {tree.accuracy(test):.3f} held-out accuracy",
        f"  full ruleset      : {ruleset.accuracy(test):.3f}",
        f"  tailored + grouped: {model.accuracy(test):.3f} "
        f"({len(model.tailored_ruleset)} of {len(model.full_ruleset)} rules)",
    ]
    emit(capsys, report_dir, "ablation1_ruleset_vs_tree", "\n".join(lines))
    assert model.accuracy(test) >= tree.accuracy(test) - 0.03
    benchmark(lambda: model.accuracy(test))


def test_ablation_tailoring(splits, report_dir, capsys, benchmark):
    train, test = splits
    tree = TreeLearner(min_leaf=8, max_depth=10).fit(train)
    full = extract_rules(tree, train)
    lines = ["Ablation 2: rule tailoring (accuracy gap tolerance sweep)"]
    for gap in (0.0, 0.01, 0.03, 0.10):
        tailored = tailor_rules(full, train, accuracy_gap=gap)
        lines.append(
            f"  gap {gap:4.2f}: {len(tailored):3d}/{len(full)} rules, "
            f"train {tailored.accuracy(train):.3f}, "
            f"test {tailored.accuracy(test):.3f}"
        )
    emit(capsys, report_dir, "ablation2_tailoring", "\n".join(lines))
    one_pct = tailor_rules(full, train, accuracy_gap=0.01)
    assert len(one_pct) <= len(full)
    assert one_pct.accuracy(train) >= full.accuracy(train) - 0.011
    benchmark(lambda: tailor_rules(full, train, accuracy_gap=0.01))


def test_ablation_confidence_threshold(
    smat, report_dir, capsys, benchmark
):
    reps = representatives(size_scale=REP_SIZE)
    lines = [
        "Ablation 3: confidence threshold vs fallback rate and overhead"
    ]
    rows = []
    for threshold in (0.0, 0.9, 0.96, 0.99, 1.0):
        config = SmatConfig(confidence_threshold=threshold)
        tuner = SMAT(smat.model, smat.kernels, smat.backend, config)
        decisions = [tuner.decide(m) for _, m in reps]
        fallbacks = sum(d.used_fallback for d in decisions)
        overhead = np.mean([d.overhead_units for d in decisions])
        rows.append((threshold, fallbacks, overhead))
        lines.append(
            f"  TH={threshold:4.2f}: {fallbacks:2d}/16 fallbacks, "
            f"avg overhead {overhead:5.1f} CSR-SpMVs"
        )
    emit(capsys, report_dir, "ablation3_threshold", "\n".join(lines))
    # Overhead grows monotonically-ish with the threshold.
    assert rows[0][1] <= rows[-1][1]
    assert rows[0][2] <= rows[-1][2] + 1e-9

    matrix = reps[0][1]
    benchmark(lambda: smat.decide(matrix))


def test_ablation_lazy_extraction(smat, report_dir, capsys, benchmark):
    reps = representatives(size_scale=REP_SIZE)
    lazy_units = []
    eager_units = []
    from repro.features.incremental import (
        POWERLAW_COST_SPMV_UNITS,
        STRUCTURE_COST_SPMV_UNITS,
    )

    eager_cost = STRUCTURE_COST_SPMV_UNITS + POWERLAW_COST_SPMV_UNITS
    for _, matrix in reps:
        decision = smat.decide(matrix)
        lazy_units.append(decision.extraction_units)
        eager_units.append(eager_cost)
    lines = [
        "Ablation 5: two-step lazy feature extraction",
        f"  lazy (group-ordered) avg: {np.mean(lazy_units):.2f} CSR-SpMVs",
        f"  eager (always fit R) avg: {np.mean(eager_units):.2f}",
        f"  saving: {100 * (1 - np.mean(lazy_units) / np.mean(eager_units)):.0f}%",
    ]
    emit(capsys, report_dir, "ablation5_lazy_extraction", "\n".join(lines))
    assert np.mean(lazy_units) < np.mean(eager_units)

    matrix = reps[0][1]
    from repro.features import LazyFeatures

    benchmark(lambda: LazyFeatures(matrix).get("ndiags"))


def test_ablation_extra_features(splits, report_dir, capsys, benchmark):
    train, test = splits
    full_model = train_model(train, min_leaf=8, max_depth=10)
    reduced_attrs = tuple(
        a for a in FEATURE_NAMES if a not in ("ntdiags_ratio", "var_rd")
    )
    reduced_tree = TreeLearner(
        min_leaf=8, max_depth=10, attributes=reduced_attrs
    ).fit(train)
    lines = [
        "Ablation 6: dropping NTdiags_ratio and var_RD (Section 4's "
        "added parameters)",
        f"  full feature set   : {full_model.accuracy(test):.3f}",
        f"  without the two    : {reduced_tree.accuracy(test):.3f}",
    ]
    emit(capsys, report_dir, "ablation6_features", "\n".join(lines))
    assert full_model.accuracy(test) >= reduced_tree.accuracy(test) - 0.02
    benchmark(
        lambda: TreeLearner(
            min_leaf=8, max_depth=10, attributes=reduced_attrs
        ).fit(train)
    )


def test_ablation_boosting(splits, report_dir, capsys, benchmark):
    train, test = splits
    single = train_model(train, min_leaf=8, max_depth=10)
    boosted = train_boosted(train, rounds=8, min_leaf=8, max_depth=10, seed=1)
    lines = [
        "Ablation 7: C5.0-style boosting (the paper's extension point)",
        f"  single ruleset model: {single.accuracy(test):.3f}",
        f"  boosted (8 rounds)  : {boosted.accuracy(test):.3f} "
        f"({len(boosted.trees)} trees)",
    ]
    emit(capsys, report_dir, "ablation7_boosting", "\n".join(lines))
    assert boosted.accuracy(test) >= single.accuracy(test) - 0.05
    benchmark(lambda: boosted.predict(test.records[0]))
